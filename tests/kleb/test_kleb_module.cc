#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "kleb/kleb_module.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::kleb;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

/** Drives ioctl/read against the module from a service process. */
class ManualController : public ServiceBehavior
{
  public:
    ManualController(KLebModule *module, KLebConfig cfg,
                     Process **target_slot)
        : module_(module), cfg_(std::move(cfg)),
          targetSlot_(target_slot)
    {
    }

    ServiceOp
    nextOp(Kernel &, Process &) override
    {
        switch (step_++) {
          case 0:
            return ServiceOp::makeSyscall(
                [this](Kernel &k, Process &me) {
                    configRc =
                        module_->ioctl(k, me, ioc::config, &cfg_);
                });
          case 1:
            return ServiceOp::makeSyscall(
                [this](Kernel &k, Process &me) {
                    startRc =
                        module_->ioctl(k, me, ioc::start, nullptr);
                    module_->setWakeTarget(&me);
                    if (*targetSlot_)
                        k.startProcess(*targetSlot_);
                });
          case 2:
            return ServiceOp::makeSleep(200_ms); // woken on finish
          case 3:
            return ServiceOp::makeSyscall(
                [this](Kernel &k, Process &me) {
                    DrainRequest req;
                    req.out = &samples;
                    long rc = module_->read(k, me, &req, 0);
                    EXPECT_GE(rc, 0);
                    finished = req.finished;
                });
          default:
            return ServiceOp::makeExit();
        }
    }

    KLebModule *module_;
    KLebConfig cfg_;
    Process **targetSlot_;
    int step_ = 0;
    long configRc = -99;
    long startRc = -99;
    std::vector<Sample> samples;
    bool finished = false;
};

} // namespace

TEST(KLebModule, ConfigValidation)
{
    System sys;
    auto module = std::make_unique<KLebModule>();
    KLebModule *mod = module.get();
    sys.kernel().loadModule(std::move(module), "/dev/kleb");

    FixedWorkSource src = computeSource(1, 1000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    KLebConfig bad;
    bad.targetPid = target->pid();
    bad.events = {}; // invalid: no events
    Process *probe = nullptr;
    ManualController ctrl(mod, bad, &probe);
    Process *svc = sys.kernel().createService("c", &ctrl, 0);
    sys.kernel().startProcess(svc);
    sys.run();
    EXPECT_EQ(ctrl.configRc, -22);
    EXPECT_EQ(ctrl.startRc, -22); // start without valid config
}

TEST(KLebModule, TooManyProgrammableEventsRejectedByCap)
{
    KLebConfig cfg;
    cfg.events.assign(8, hw::HwEvent::llcMiss);
    EXPECT_GT(cfg.events.size(), maxSampleEvents);
}

TEST(KLebModule, CollectsPeriodicSamples)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    auto module = std::make_unique<KLebModule>();
    KLebModule *mod = module.get();
    sys.kernel().loadModule(std::move(module), "/dev/kleb");

    // ~7.5 ms of work.
    FixedWorkSource src = computeSource(40, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    KLebConfig cfg;
    cfg.targetPid = target->pid();
    cfg.events = {hw::HwEvent::instRetired,
                  hw::HwEvent::branchRetired};
    cfg.timerPeriod = 100_us;

    ManualController ctrl(mod, cfg, &target);
    Process *svc = sys.kernel().createService("c", &ctrl, 1);
    sys.kernel().startProcess(svc);
    sys.run();

    EXPECT_EQ(ctrl.configRc, 0);
    EXPECT_EQ(ctrl.startRc, 0);
    EXPECT_TRUE(ctrl.finished);
    // ~75 timer samples plus the final snapshot.
    EXPECT_GT(ctrl.samples.size(), 60u);
    EXPECT_LT(ctrl.samples.size(), 90u);
    EXPECT_EQ(ctrl.samples.back().cause, SampleCause::final);

    // Counts are cumulative and monotonic; the final value is the
    // exact user-mode total.
    std::uint64_t prev = 0;
    for (const Sample &s : ctrl.samples) {
        EXPECT_EQ(s.numEvents, 2);
        EXPECT_GE(s.counts[0], prev);
        prev = s.counts[0];
    }
    EXPECT_EQ(ctrl.samples.back().counts[0], 40000000u);
    EXPECT_EQ(ctrl.samples.back().counts[1], 40 * 125000u);
}

TEST(KLebModule, TimestampsRoughlyPeriodic)
{
    System sys(hw::MachineConfig::corei7_920(), 2, quietCosts());
    auto module = std::make_unique<KLebModule>();
    KLebModule *mod = module.get();
    sys.kernel().loadModule(std::move(module), "/dev/kleb");

    FixedWorkSource src = computeSource(40, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    KLebConfig cfg;
    cfg.targetPid = target->pid();
    cfg.events = {hw::HwEvent::instRetired};
    cfg.timerPeriod = 500_us;

    ManualController ctrl(mod, cfg, &target);
    Process *svc = sys.kernel().createService("c", &ctrl, 1);
    sys.kernel().startProcess(svc);
    sys.run();

    ASSERT_GT(ctrl.samples.size(), 5u);
    for (std::size_t i = 1; i + 1 < ctrl.samples.size(); ++i) {
        Tick gap = ctrl.samples[i].timestamp -
                   ctrl.samples[i - 1].timestamp;
        EXPECT_GE(gap, 450_us);
        EXPECT_LE(gap, 600_us);
    }
}

TEST(KLebModule, IsolationExcludesOtherProcesses)
{
    System sys(hw::MachineConfig::corei7_920(), 3, quietCosts());
    auto module = std::make_unique<KLebModule>();
    KLebModule *mod = module.get();
    sys.kernel().loadModule(std::move(module), "/dev/kleb");

    // Two workloads share core 0; only one is monitored.
    FixedWorkSource src_t = computeSource(20, 1000000, 2.0);
    FixedWorkSource src_o = computeSource(20, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src_t, 0);
    Process *other = sys.kernel().createWorkload("o", &src_o, 0);
    sys.kernel().startProcess(other);

    KLebConfig cfg;
    cfg.targetPid = target->pid();
    cfg.events = {hw::HwEvent::instRetired};
    cfg.timerPeriod = 200_us;

    ManualController ctrl(mod, cfg, &target);
    Process *svc = sys.kernel().createService("c", &ctrl, 1);
    sys.kernel().startProcess(svc);
    sys.run();

    // The final count equals the monitored process's instructions
    // exactly: the co-runner leaked nothing into the counters.
    ASSERT_FALSE(ctrl.samples.empty());
    EXPECT_EQ(ctrl.samples.back().counts[0], 20000000u);
}

TEST(KLebModule, DescendantTracing)
{
    System sys(hw::MachineConfig::corei7_920(), 4, quietCosts());
    auto module = std::make_unique<KLebModule>();
    KLebModule *mod = module.get();
    sys.kernel().loadModule(std::move(module), "/dev/kleb");

    FixedWorkSource parent_src = computeSource(5, 1000000, 2.0);
    Process *parent =
        sys.kernel().createWorkload("parent", &parent_src, 0);

    KLebConfig cfg;
    cfg.targetPid = parent->pid();
    cfg.events = {hw::HwEvent::instRetired};
    cfg.timerPeriod = 100_us;
    cfg.traceChildren = true;

    ManualController ctrl(mod, cfg, &parent);
    Process *svc = sys.kernel().createService("c", &ctrl, 1);
    sys.kernel().startProcess(svc);

    // A child created mid-run must be counted as well... create it
    // up-front as a ready sibling (child of parent) on the same
    // core; counters must cover both processes' user instructions.
    FixedWorkSource child_src = computeSource(5, 1000000, 2.0);
    Process *child = sys.kernel().createWorkload(
        "child", &child_src, 0, parent->pid());
    sys.kernel().onExit(parent->pid(), [&] {
        // Parent done; child keeps running while still monitored.
    });
    sys.kernel().startProcess(child);

    sys.run();
    ASSERT_FALSE(ctrl.samples.empty());
    // Monitoring stops when the *target* (parent) exits; by then
    // the child ran interleaved on the same core, so the counters
    // saw more than the parent's own instructions.
    EXPECT_GT(ctrl.samples.back().counts[0], 5000000u);
    EXPECT_LE(ctrl.samples.back().counts[0], 10000000u);
}

namespace
{

/** Drives config/start, then a mid-run SET_PERIOD, then a drain. */
class SetPeriodController : public ServiceBehavior
{
  public:
    SetPeriodController(KLebModule *module, KLebConfig cfg,
                        Process **target_slot, Tick new_period)
        : module_(module), cfg_(std::move(cfg)),
          targetSlot_(target_slot), newPeriod_(new_period)
    {
    }

    ServiceOp
    nextOp(Kernel &, Process &) override
    {
        switch (step_++) {
          case 0:
            return ServiceOp::makeSyscall(
                [this](Kernel &k, Process &me) {
                    EXPECT_EQ(module_->ioctl(k, me, ioc::config,
                                             &cfg_),
                              0);
                });
          case 1:
            return ServiceOp::makeSyscall(
                [this](Kernel &k, Process &me) {
                    EXPECT_EQ(module_->ioctl(k, me, ioc::start,
                                             nullptr),
                              0);
                    module_->setWakeTarget(&me);
                    if (*targetSlot_)
                        k.startProcess(*targetSlot_);
                });
          case 2:
            return ServiceOp::makeSleep(3500_us);
          case 3:
            return ServiceOp::makeSyscall(
                [this](Kernel &k, Process &me) {
                    changedAt = k.now();
                    setRc = module_->ioctl(
                        k, me, ioc::setPeriod, &newPeriod_);
                });
          case 4:
            return ServiceOp::makeSleep(200_ms); // woken on finish
          case 5:
            return ServiceOp::makeSyscall(
                [this](Kernel &k, Process &me) {
                    DrainRequest req;
                    req.out = &samples;
                    EXPECT_GE(module_->read(k, me, &req, 0), 0);
                });
          default:
            return ServiceOp::makeExit();
        }
    }

    KLebModule *module_;
    KLebConfig cfg_;
    Process **targetSlot_;
    Tick newPeriod_;
    int step_ = 0;
    long setRc = -99;
    Tick changedAt = 0;
    std::vector<Sample> samples;
};

} // namespace

TEST(KLebModule, SetPeriodValidation)
{
    System sys(hw::MachineConfig::corei7_920(), 3, quietCosts());
    auto module = std::make_unique<KLebModule>();
    KLebModule *mod = module.get();
    sys.kernel().loadModule(std::move(module), "/dev/kleb");

    struct Probe : public ServiceBehavior
    {
        KLebModule *mod;
        long beforeConfig = -99, nullArg = -99, zeroPeriod = -99;
        int step = 0;
        explicit Probe(KLebModule *m) : mod(m) {}
        ServiceOp
        nextOp(Kernel &, Process &) override
        {
            if (step++ > 0)
                return ServiceOp::makeExit();
            return ServiceOp::makeSyscall(
                [this](Kernel &k, Process &me) {
                    Tick period = usToTicks(100);
                    beforeConfig = mod->ioctl(
                        k, me, ioc::setPeriod, &period);
                    nullArg = mod->ioctl(k, me, ioc::setPeriod,
                                         nullptr);
                    Tick zero = 0;
                    zeroPeriod = mod->ioctl(
                        k, me, ioc::setPeriod, &zero);
                });
        }
    } probe(mod);

    Process *svc = sys.kernel().createService("p", &probe, 0);
    sys.kernel().startProcess(svc);
    sys.run();
    EXPECT_EQ(probe.beforeConfig, err::einval);
    EXPECT_EQ(probe.nullArg, err::einval);
    EXPECT_EQ(probe.zeroPeriod, err::einval);
    EXPECT_EQ(mod->status().periodChanges, 0u);
}

TEST(KLebModule, SetPeriodReprogramsLiveTimer)
{
    System sys(hw::MachineConfig::corei7_920(), 9, quietCosts());
    auto module = std::make_unique<KLebModule>();
    KLebModule *mod = module.get();
    sys.kernel().loadModule(std::move(module), "/dev/kleb");

    FixedWorkSource src = computeSource(30, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);
    KLebConfig cfg;
    cfg.targetPid = target->pid();
    cfg.events = {hw::HwEvent::instRetired};
    cfg.timerPeriod = 1_ms;
    SetPeriodController ctrl(mod, cfg, &target, 100_us);
    Process *svc = sys.kernel().createService("c", &ctrl, 1);
    sys.kernel().startProcess(svc);
    sys.run();

    EXPECT_EQ(ctrl.setRc, 0);
    KLebStatus st = mod->status();
    EXPECT_EQ(st.currentPeriod, 100_us);
    EXPECT_EQ(st.periodChanges, 1u);

    // Timer samples before the reprogram are ~1 ms apart, after it
    // ~100 us apart — and no sample is lost or duplicated across
    // the switch (timestamps strictly increase).
    std::size_t before = 0, after = 0;
    for (std::size_t i = 1; i < ctrl.samples.size(); ++i) {
        const Sample &prev = ctrl.samples[i - 1];
        const Sample &cur = ctrl.samples[i];
        ASSERT_LT(prev.timestamp, cur.timestamp);
        if (cur.cause != SampleCause::timer)
            continue;
        Tick delta = cur.timestamp - prev.timestamp;
        if (cur.timestamp <= ctrl.changedAt) {
            ++before;
            EXPECT_GT(delta, 800_us);
        } else if (prev.timestamp > ctrl.changedAt) {
            ++after;
            EXPECT_LT(delta, 200_us);
        }
    }
    EXPECT_GE(before, 1u);
    EXPECT_GE(after, 5u);
}

TEST(KLebModule, StatusReflectsLifecycle)
{
    System sys(hw::MachineConfig::corei7_920(), 5, quietCosts());
    auto module = std::make_unique<KLebModule>();
    KLebModule *mod = module.get();
    sys.kernel().loadModule(std::move(module), "/dev/kleb");

    KLebStatus st = mod->status();
    EXPECT_FALSE(st.monitoring);

    FixedWorkSource src = computeSource(10, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);
    KLebConfig cfg;
    cfg.targetPid = target->pid();
    cfg.events = {hw::HwEvent::instRetired};
    cfg.timerPeriod = 100_us;
    ManualController ctrl(mod, cfg, &target);
    Process *svc = sys.kernel().createService("c", &ctrl, 1);
    sys.kernel().startProcess(svc);

    sys.run(1_ms);
    st = mod->status();
    EXPECT_TRUE(st.monitoring);
    EXPECT_TRUE(st.targetAlive);
    EXPECT_GT(st.samplesRecorded, 0u);

    sys.run();
    st = mod->status();
    EXPECT_FALSE(st.monitoring);
    EXPECT_FALSE(st.targetAlive);
    EXPECT_EQ(st.samplesDropped, 0u);
}
