/**
 * @file
 * Regression tests for the shared heartbeat cell (kleb/supervisor).
 *
 * The cell is the one piece of controller/supervisor state that
 * models true shared memory, so its fields are std::atomic: a
 * stamping writer and a polling reader must never tear a Tick or
 * lose a beat.  These tests drive the cell from real host threads —
 * under the lockset-chaos CI job they also run under TSan, which
 * would flag any regression back to plain fields immediately.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>

#include "kleb/supervisor.hh"

namespace
{

using klebsim::Tick;
using klebsim::kleb::Heartbeat;

TEST(HeartbeatCell, ConcurrentStampAndPollStaysCoherent)
{
    Heartbeat hb;
    constexpr std::uint64_t stamps = 20000;
    constexpr Tick stride = 1000;

    std::thread stamper([&hb] {
        // The controller's onSyscallOk pattern: stamp the tick,
        // then count the beat.
        for (std::uint64_t k = 1; k <= stamps; ++k) {
            hb.lastBeat.store(k * stride,
                              std::memory_order_relaxed);
            hb.beats.fetch_add(1, std::memory_order_relaxed);
        }
    });

    // The supervisor's poll pattern: one snapshot per judgment.
    // Every observed value must be a value the writer actually
    // stored (tear-free) and — single writer, single location —
    // coherence makes successive reads monotonic.
    Tick prev = 0;
    while (hb.beats.load(std::memory_order_relaxed) < stamps) {
        const Tick last =
            hb.lastBeat.load(std::memory_order_relaxed);
        ASSERT_EQ(last % stride, 0u) << "torn read";
        ASSERT_GE(last, prev) << "beat went backwards";
        prev = last;
    }
    stamper.join();

    EXPECT_EQ(hb.lastBeat.load(std::memory_order_relaxed),
              stamps * stride);
    EXPECT_EQ(hb.beats.load(std::memory_order_relaxed), stamps);
}

TEST(HeartbeatCell, StalenessIsJudgedFromOneSnapshot)
{
    // The supervisor snapshots lastBeat once per evaluation; this
    // pins the arithmetic it applies to the snapshot.  With the
    // cell restamped concurrently, two separate loads could mix a
    // stale "now > last" with a fresh "now - last", so the
    // judgment must be a pure function of (now, snapshot, timeout).
    auto stale = [](Tick now, Tick snapshot, Tick timeout) {
        return now > snapshot && now - snapshot > timeout;
    };
    EXPECT_FALSE(stale(1000, 1000, 50)); // just beat
    EXPECT_FALSE(stale(1040, 1000, 50)); // within timeout
    EXPECT_FALSE(stale(1050, 1000, 50)); // boundary: not yet late
    EXPECT_TRUE(stale(1051, 1000, 50));  // one past the timeout
    EXPECT_FALSE(stale(900, 1000, 50));  // grace stamp in the future
}

TEST(HeartbeatCell, ManyStampersNeverLoseABeat)
{
    // Several controller incarnations would never stamp at once in
    // a real session, but the cell must still count correctly if
    // they did (fetch_add, not load-modify-store).
    Heartbeat hb;
    constexpr int threads = 4;
    constexpr std::uint64_t each = 5000;
    std::vector<std::thread> stampers;
    stampers.reserve(threads);
    for (int t = 0; t < threads; ++t)
        stampers.emplace_back([&hb] {
            for (std::uint64_t k = 0; k < each; ++k)
                hb.beats.fetch_add(1, std::memory_order_relaxed);
        });
    for (std::thread &t : stampers)
        t.join();
    EXPECT_EQ(hb.beats.load(std::memory_order_relaxed),
              threads * each);
}

} // anonymous namespace
