#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "kleb/session.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

} // namespace

/**
 * Failure injection around the monitoring stack: killed targets,
 * killed controllers, mid-run module unloads, and dead-on-arrival
 * targets must all degrade gracefully (no crashes, no sample
 * corruption, consistent status).
 */
TEST(FailureInjection, TargetKilledMidMonitoring)
{
    System sys(hw::MachineConfig::corei7_920(), 41, quietCosts());
    FixedWorkSource src = computeSource(200, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired};
    opts.period = 100_us;
    kleb::Session session(sys, opts);
    session.monitor(target);

    sys.run(5_ms);
    ASSERT_NE(target->state(), ProcState::zombie);
    sys.kernel().kill(target);
    sys.run();

    // The module saw the exit, finalized, and the controller
    // exited after draining everything.
    EXPECT_TRUE(session.finished());
    kleb::KLebStatus st = session.status();
    EXPECT_FALSE(st.monitoring);
    EXPECT_FALSE(st.targetAlive);
    EXPECT_EQ(st.pendingSamples, 0u);
    ASSERT_FALSE(session.samples().empty());
    EXPECT_EQ(session.samples().back().cause,
              kleb::SampleCause::final);
    // The final count reflects the truncated run, not the full one.
    EXPECT_LT(at(session.finalTotals(), hw::HwEvent::instRetired),
              200000000u);
    EXPECT_GT(at(session.finalTotals(), hw::HwEvent::instRetired),
              0u);
}

TEST(FailureInjection, ControllerKilledTargetUnharmed)
{
    System sys(hw::MachineConfig::corei7_920(), 42, quietCosts());
    FixedWorkSource src = computeSource(60, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired};
    opts.period = 100_us;
    opts.bufferCapacity = 64;
    kleb::Session session(sys, opts);
    session.monitor(target);

    sys.run(3_ms);
    // Murder the controller mid-run.
    sys.kernel().kill(session.controllerProcess());
    sys.run();

    // The workload still completes with exact work; the module's
    // safety mechanism pauses when the (undrained) buffer fills
    // rather than dropping or crashing.
    EXPECT_EQ(target->state(), ProcState::zombie);
    EXPECT_EQ(target->execContext()->instructionsRetired(),
              60000000u);
    kleb::KLebStatus st = session.status();
    // With nobody draining, the only possible loss is the final
    // snapshot finding the buffer full; periodic samples pause
    // instead of dropping.
    EXPECT_LE(st.samplesDropped, 1u);
    EXPECT_GT(st.pauseEpisodes, 0u);
    EXPECT_FALSE(session.finished());
}

TEST(FailureInjection, ModuleUnloadedMidMonitoring)
{
    System sys(hw::MachineConfig::corei7_920(), 43, quietCosts());
    FixedWorkSource src = computeSource(60, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    auto module = std::make_unique<kleb::KLebModule>();
    kleb::KLebModule *mod = module.get();
    sys.kernel().loadModule(std::move(module), "/dev/kleb-fi");

    // Drive the module directly (configure + start + launch).
    kleb::KLebConfig cfg;
    cfg.targetPid = target->pid();
    cfg.events = {hw::HwEvent::instRetired};
    cfg.timerPeriod = 100_us;

    class Driver : public ServiceBehavior
    {
      public:
        Driver(kleb::KLebModule *m, kleb::KLebConfig *c,
               Process *t)
            : m_(m), c_(c), t_(t)
        {
        }
        ServiceOp
        nextOp(Kernel &, Process &) override
        {
            switch (step_++) {
              case 0:
                return ServiceOp::makeSyscall(
                    [this](Kernel &k, Process &me) {
                        ASSERT_EQ(
                            m_->ioctl(k, me, kleb::ioc::config,
                                      c_),
                            0);
                        ASSERT_EQ(m_->ioctl(k, me,
                                            kleb::ioc::start,
                                            nullptr),
                                  0);
                        k.startProcess(t_);
                    });
              default:
                return ServiceOp::makeExit();
            }
        }
        kleb::KLebModule *m_;
        kleb::KLebConfig *c_;
        Process *t_;
        int step_ = 0;
    } driver(mod, &cfg, target);

    Process *svc = sys.kernel().createService("drv", &driver, 1);
    sys.kernel().startProcess(svc);
    sys.run(4_ms);
    ASSERT_TRUE(mod->status().monitoring);

    // rmmod while the target is still running: hooks must detach
    // and the timer must stop; the workload is unaffected.
    sys.kernel().unloadModule("/dev/kleb-fi");
    sys.run();
    EXPECT_EQ(target->state(), ProcState::zombie);
    EXPECT_EQ(target->execContext()->instructionsRetired(),
              60000000u);
}

TEST(FailureInjection, MonitorAlreadyDeadTarget)
{
    System sys(hw::MachineConfig::corei7_920(), 44, quietCosts());
    FixedWorkSource src = computeSource(2, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);
    sys.kernel().startProcess(target);
    sys.run();
    ASSERT_EQ(target->state(), ProcState::zombie);

    kleb::Session::Options opts;
    opts.period = 100_us;
    kleb::Session session(sys, opts);
    session.monitor(target, /*start_target=*/false);
    sys.run();

    // Nothing to record: the controller notices the dead target
    // (the module finalizes immediately) and exits cleanly.
    EXPECT_TRUE(session.finished());
}

TEST(FailureInjection, ZeroLengthWorkload)
{
    System sys(hw::MachineConfig::corei7_920(), 45, quietCosts());
    FixedWorkSource src{std::vector<hw::WorkChunk>{}};
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.period = 100_us;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    EXPECT_EQ(target->state(), ProcState::zombie);
    EXPECT_TRUE(session.finished());
    EXPECT_EQ(at(session.finalTotals(), hw::HwEvent::instRetired),
              0u);
}
