#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "base/random.hh"
#include "kleb/durable_log.hh"
#include "kleb/log_recovery.hh"

using namespace klebsim;
using namespace klebsim::kleb;

namespace
{

/** A deterministic, distinctive sample for slot @p i. */
Sample
sampleAt(std::uint64_t i)
{
    Sample s;
    s.timestamp = 1000 + i * 250;
    s.cause = SampleCause::timer;
    s.numEvents = 3;
    s.counts = {};
    for (std::size_t c = 0; c < 3; ++c)
        s.counts[c] = i * 100 + c * 7;
    return s;
}

bool
sameSample(const Sample &a, const Sample &b)
{
    return a.timestamp == b.timestamp && a.cause == b.cause &&
           a.numEvents == b.numEvents && a.counts == b.counts;
}

/** A log with @p epochs epochs of @p per samples each. */
DurableLog
makeLog(std::uint32_t epochs, std::uint64_t per)
{
    DurableLog log;
    std::uint64_t i = 0;
    for (std::uint32_t e = 0; e < epochs; ++e) {
        // Epoch frames sit just before their first sample so the
        // whole medium stays time-monotone.
        log.beginEpoch(sampleAt(i).timestamp - 50);
        for (std::uint64_t k = 0; k < per; ++k)
            log.append(sampleAt(i++));
    }
    return log;
}

bool
sameReports(const RecoveryReport &a, const RecoveryReport &b)
{
    return a.valid == b.valid && a.framesEmitted == b.framesEmitted &&
           a.framesKept == b.framesKept &&
           a.framesDropped == b.framesDropped &&
           a.framesVanished == b.framesVanished &&
           a.tornTail == b.tornTail && a.epochs == b.epochs &&
           a.samplesRecovered == b.samplesRecovered &&
           a.gapTicks == b.gapTicks &&
           a.gaps.size() == b.gaps.size();
}

} // namespace

TEST(Crc32c, KnownAnswer)
{
    // The canonical CRC32C check value: "123456789" -> 0xE3069283
    // (RFC 3720 appendix B / the iSCSI test vector).
    const char *msg = "123456789";
    EXPECT_EQ(crc32c(reinterpret_cast<const std::uint8_t *>(msg),
                     std::strlen(msg)),
              0xE3069283u);
}

TEST(Crc32c, SeedChainsIncrementally)
{
    // crc(a+b) == crc(b, seeded with crc(a)): the seed parameter
    // makes incremental framing possible.
    const std::uint8_t data[] = {1, 2, 3, 4, 5, 6, 7, 8};
    std::uint32_t whole = crc32c(data, 8);
    std::uint32_t first = crc32c(data, 3);
    EXPECT_EQ(crc32c(data + 3, 5, first), whole);
    EXPECT_NE(crc32c(data, 8, 1), whole);
}

TEST(DurableLog, LayoutAndCounters)
{
    DurableLog log = makeLog(1, 5);
    EXPECT_EQ(log.epochsOpened(), 1u);
    EXPECT_EQ(log.samplesAppended(), 5u);
    EXPECT_EQ(log.framesAppended(), 6u); // epoch frame + 5 samples
    EXPECT_EQ(log.bytes().size(),
              DurableLog::headerSize + 6 * DurableLog::frameSize);
}

TEST(DurableLog, CleanRoundTrip)
{
    DurableLog log = makeLog(1, 20);
    RecoveredLog rec = LogRecovery::scan(log.bytes());

    EXPECT_TRUE(rec.report.valid);
    EXPECT_TRUE(rec.report.balanced());
    EXPECT_EQ(rec.report.framesEmitted, log.framesAppended());
    EXPECT_EQ(rec.report.framesKept, log.framesAppended());
    EXPECT_EQ(rec.report.framesDropped, 0u);
    EXPECT_EQ(rec.report.framesVanished, 0u);
    EXPECT_FALSE(rec.report.tornTail);
    EXPECT_EQ(rec.report.epochs, 1u);
    EXPECT_TRUE(rec.report.gaps.empty());
    EXPECT_TRUE(rec.report.violations.empty())
        << rec.report.violations.front();
    ASSERT_EQ(rec.samples.size(), 20u);
    for (std::uint64_t i = 0; i < 20; ++i)
        EXPECT_TRUE(sameSample(rec.samples[i], sampleAt(i))) << i;
}

TEST(DurableLog, MultiEpochGapRecords)
{
    DurableLog log = makeLog(3, 4);
    RecoveredLog rec = LogRecovery::scan(log.bytes());

    EXPECT_TRUE(rec.report.balanced());
    EXPECT_EQ(rec.report.epochs, 3u);
    ASSERT_EQ(rec.report.gaps.size(), 2u);
    // Gap spans run from the last pre-outage sample to the first
    // post-restart sample; epochs are adjacent incarnations.
    EXPECT_EQ(rec.report.gaps[0].fromEpoch, 0u);
    EXPECT_EQ(rec.report.gaps[0].toEpoch, 1u);
    EXPECT_EQ(rec.report.gaps[0].from, sampleAt(3).timestamp);
    EXPECT_EQ(rec.report.gaps[0].to, sampleAt(4).timestamp);
    Tick expected = (sampleAt(4).timestamp - sampleAt(3).timestamp) +
                    (sampleAt(8).timestamp - sampleAt(7).timestamp);
    EXPECT_EQ(rec.report.gapTicks, expected);

    // The spliced series carries the outages in its gap channel.
    stats::TimeSeries series =
        LogRecovery::splice(rec, {"a", "b", "c"});
    ASSERT_EQ(series.size(), 12u);
    ASSERT_EQ(series.channels(), 4u);
    EXPECT_EQ(series.channelNames().back(), "gap_ticks");
    std::size_t gap_col = series.channelIndex("gap_ticks");
    double gap_sum = 0;
    for (std::size_t row = 0; row < series.size(); ++row)
        gap_sum += series.valueAt(row, gap_col);
    EXPECT_EQ(gap_sum, static_cast<double>(expected));

    // Losses fold into the shared accounting shape.
    stats::LossCounts lc = rec.report.losses();
    EXPECT_EQ(lc.accepted, 12u);
    EXPECT_EQ(lc.dropped, 0u);
    EXPECT_EQ(lc.gaps, 0u);
}

TEST(DurableLog, HeaderCorruptionInvalidatesScan)
{
    DurableLog log = makeLog(1, 3);
    std::vector<std::uint8_t> bytes = log.bytes();
    bytes[0] ^= 0xff; // magic
    RecoveredLog rec = LogRecovery::scan(bytes);
    EXPECT_FALSE(rec.report.valid);
    EXPECT_FALSE(rec.report.balanced());
    EXPECT_TRUE(rec.samples.empty());
    EXPECT_FALSE(rec.report.violations.empty());

    RecoveredLog tiny = LogRecovery::scan({1, 2, 3});
    EXPECT_FALSE(tiny.report.valid);
}

TEST(DurableLog, TornTailProperty)
{
    // Truncating any number of bytes off the tail must (a) keep the
    // accounting balanced, (b) recover a strict prefix of the
    // original samples, byte-identical, and (c) flag a torn tail
    // exactly when the cut leaves a partial slot.
    DurableLog log = makeLog(2, 10);
    const std::vector<std::uint8_t> &full = log.bytes();
    RecoveredLog clean = LogRecovery::scan(full);
    ASSERT_TRUE(clean.report.balanced());

    Random rng(0xD15C, 1);
    const std::size_t body = full.size() - DurableLog::headerSize;
    for (int trial = 0; trial < 200; ++trial) {
        std::size_t cut = rng.below(static_cast<std::uint32_t>(body));
        std::vector<std::uint8_t> torn(full.begin(),
                                       full.end() - cut);
        RecoveredLog rec = LogRecovery::scan(torn);

        EXPECT_TRUE(rec.report.valid);
        EXPECT_TRUE(rec.report.balanced())
            << "cut=" << cut << " kept=" << rec.report.framesKept
            << " dropped=" << rec.report.framesDropped
            << " vanished=" << rec.report.framesVanished
            << " emitted=" << rec.report.framesEmitted;
        EXPECT_EQ(rec.report.tornTail,
                  cut % DurableLog::frameSize != 0);

        // Recovered samples are a byte-identical prefix.
        ASSERT_LE(rec.samples.size(), clean.samples.size());
        for (std::size_t i = 0; i < rec.samples.size(); ++i)
            EXPECT_TRUE(
                sameSample(rec.samples[i], clean.samples[i]));

        // Deterministic: a second scan agrees exactly.
        RecoveredLog again = LogRecovery::scan(torn);
        EXPECT_TRUE(sameReports(rec.report, again.report));
        EXPECT_EQ(rec.samples.size(), again.samples.size());
    }
}

TEST(DurableLog, BitflipProperty)
{
    // Flipping random bits in the body must never smuggle a wrong
    // sample through: every recovered sample is byte-identical to
    // one the writer appended (CRC catches the rest as dropped),
    // and the accounting still balances.
    DurableLog log = makeLog(2, 12);
    const std::vector<std::uint8_t> &full = log.bytes();
    RecoveredLog clean = LogRecovery::scan(full);

    Random rng(0xB17F, 2);
    const std::size_t size = full.size();
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<std::uint8_t> dirty = full;
        int flips = 1 + static_cast<int>(rng.below(6));
        for (int f = 0; f < flips; ++f) {
            std::size_t pos =
                DurableLog::headerSize +
                rng.below(static_cast<std::uint32_t>(
                    size - DurableLog::headerSize));
            dirty[pos] ^= static_cast<std::uint8_t>(
                1u << rng.below(8));
        }
        RecoveredLog rec = LogRecovery::scan(dirty);

        EXPECT_TRUE(rec.report.valid);
        EXPECT_TRUE(rec.report.balanced());
        EXPECT_EQ(rec.report.framesKept + rec.report.framesDropped,
                  rec.report.framesEmitted);

        // Every kept sample matches some original sample exactly.
        for (const Sample &s : rec.samples) {
            bool found = false;
            for (const Sample &o : clean.samples)
                if (sameSample(s, o)) {
                    found = true;
                    break;
                }
            EXPECT_TRUE(found)
                << "corrupted sample survived the CRC";
        }

        RecoveredLog again = LogRecovery::scan(dirty);
        EXPECT_TRUE(sameReports(rec.report, again.report));
    }
}

TEST(DurableLog, AppendWithoutEpochPanics)
{
    DurableLog log;
    EXPECT_DEATH(log.append(sampleAt(0)), "beginEpoch");
}

TEST(DurableLog, RateChangeRoundTrip)
{
    DurableLog log;
    log.beginEpoch(sampleAt(0).timestamp - 50);
    log.append(sampleAt(0));
    log.recordRateChange(sampleAt(0).timestamp + 10,
                         usToTicks(100), usToTicks(200));
    log.append(sampleAt(1));
    log.recordRateChange(sampleAt(1).timestamp + 10,
                         usToTicks(200), usToTicks(400));
    log.append(sampleAt(2));
    EXPECT_EQ(log.rateChangesAppended(), 2u);
    EXPECT_EQ(log.framesAppended(), 6u);

    RecoveredLog rec = LogRecovery::scan(log.bytes());
    EXPECT_TRUE(rec.report.valid);
    EXPECT_TRUE(rec.report.balanced());
    EXPECT_EQ(rec.report.rateChanges, 2u);
    // Rate-change frames ride in the journal but never in the
    // sample chain: the spliced series is pure samples.
    ASSERT_EQ(rec.samples.size(), 3u);
    EXPECT_TRUE(rec.report.gaps.empty());
    ASSERT_EQ(rec.rateChanges.size(), 2u);
    EXPECT_EQ(rec.rateChanges[0].epoch, 0u);
    EXPECT_EQ(rec.rateChanges[0].at, sampleAt(0).timestamp + 10);
    EXPECT_EQ(rec.rateChanges[0].oldPeriod, usToTicks(100));
    EXPECT_EQ(rec.rateChanges[0].newPeriod, usToTicks(200));
    EXPECT_EQ(rec.rateChanges[1].oldPeriod, usToTicks(200));
    EXPECT_EQ(rec.rateChanges[1].newPeriod, usToTicks(400));
    stats::TimeSeries series =
        LogRecovery::splice(rec, {"a", "b", "c"});
    EXPECT_EQ(series.size(), 3u);
}

TEST(DurableLog, CorruptRateChangeFramesAreDropped)
{
    DurableLog log;
    log.beginEpoch(sampleAt(0).timestamp - 50);
    log.append(sampleAt(0));
    log.recordRateChange(sampleAt(0).timestamp + 10,
                         usToTicks(100), usToTicks(200));
    std::vector<std::uint8_t> bytes = log.bytes();

    // Corrupt the rate-change frame's new-period field (offset 48
    // inside the third frame): the CRC catches it and the frame is
    // dropped, not misread as a zero-period change.
    std::size_t frame =
        DurableLog::headerSize + 2 * DurableLog::frameSize;
    for (int i = 0; i < 8; ++i)
        bytes[frame + 48 + i] = 0;
    RecoveredLog rec = LogRecovery::scan(bytes);
    EXPECT_TRUE(rec.report.balanced());
    EXPECT_EQ(rec.report.framesDropped, 1u);
    EXPECT_EQ(rec.report.rateChanges, 0u);
    EXPECT_TRUE(rec.rateChanges.empty());
    EXPECT_EQ(rec.samples.size(), 1u);
}

TEST(DurableLog, UnknownFrameKindStillDropped)
{
    // A frame kind past rateChange (from a newer writer or plain
    // corruption) is dropped even if its CRC were recomputed; pin
    // the kind check itself by patching kind + CRC is overkill, a
    // flipped kind breaks the CRC and takes the drop path.
    DurableLog log;
    log.beginEpoch(sampleAt(0).timestamp - 50);
    log.append(sampleAt(0));
    std::vector<std::uint8_t> bytes = log.bytes();
    std::size_t frame =
        DurableLog::headerSize + DurableLog::frameSize;
    bytes[frame + 12] = 3; // kind
    RecoveredLog rec = LogRecovery::scan(bytes);
    EXPECT_TRUE(rec.report.balanced());
    EXPECT_EQ(rec.report.framesDropped, 1u);
    EXPECT_TRUE(rec.samples.empty());
}

TEST(DurableLog, RateChangeWithoutEpochPanics)
{
    DurableLog log;
    EXPECT_DEATH(log.recordRateChange(100, 0, usToTicks(100)),
                 "beginEpoch");
}
