#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "kleb/session.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

} // namespace

/**
 * The paper's safety mechanism (section III): when the controller
 * cannot drain fast enough and the kernel buffer fills, the module
 * pauses collection instead of corrupting/dropping samples, and
 * resumes automatically after a drain.
 */
TEST(Safety, BufferFullPausesInsteadOfDropping)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    // ~37 ms of work; 100 us sampling with a tiny 32-sample buffer
    // and a starved controller (1 s drain interval).
    FixedWorkSource src = computeSource(200, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired};
    opts.period = 100_us;
    opts.bufferCapacity = 32;
    opts.idealTimer = true;
    opts.controllerTuning.drainInterval = 1000_ms; // starved
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    kleb::KLebStatus st = session.status();
    EXPECT_GT(st.pauseEpisodes, 0u);
    EXPECT_EQ(st.samplesDropped, 0u);
    EXPECT_TRUE(session.finished());
    // The buffer-full wake rescued the controller from starvation;
    // everything recorded arrived in the log.
    EXPECT_EQ(session.samples().size(), st.samplesRecorded);
    // Final totals remain exact despite the pauses.
    EXPECT_EQ(at(session.finalTotals(), hw::HwEvent::instRetired),
              200000000u);
}

TEST(Safety, CollectionResumesAfterDrain)
{
    System sys(hw::MachineConfig::corei7_920(), 2, quietCosts());
    FixedWorkSource src = computeSource(200, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired};
    opts.period = 100_us;
    opts.bufferCapacity = 64;
    opts.idealTimer = true;
    opts.controllerTuning.drainInterval = 5_ms;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    kleb::KLebStatus st = session.status();
    // With periodic drains the module paused at most briefly and
    // kept recording: far more samples than one buffer's worth.
    EXPECT_GT(st.samplesRecorded, 64u);
    EXPECT_EQ(st.samplesDropped, 0u);
    EXPECT_EQ(session.samples().size(), st.samplesRecorded);
}

TEST(Safety, GenerousBufferNeverPauses)
{
    System sys(hw::MachineConfig::corei7_920(), 3, quietCosts());
    FixedWorkSource src = computeSource(100, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired};
    opts.period = 100_us;
    opts.bufferCapacity = 16384;
    opts.idealTimer = true;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    kleb::KLebStatus st = session.status();
    EXPECT_EQ(st.pauseEpisodes, 0u);
    EXPECT_EQ(st.samplesDropped, 0u);
}

TEST(Safety, StarvedControllerRescuedByBufferFullWakes)
{
    System sys(hw::MachineConfig::corei7_920(), 4, quietCosts());
    FixedWorkSource src = computeSource(200, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired};
    opts.period = 100_us;
    opts.bufferCapacity = 16;
    opts.idealTimer = true;
    // The controller would wake once per second on its own; every
    // drain it performs during this ~40 ms run is wake-driven.
    opts.controllerTuning.drainInterval = 1000_ms;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    kleb::KLebStatus st = session.status();
    // Repeated fill/pause/drain/resume cycles, with zero loss.
    EXPECT_GT(st.pauseEpisodes, 5u);
    EXPECT_EQ(st.samplesDropped, 0u);
    EXPECT_EQ(session.samples().size(), st.samplesRecorded);
    EXPECT_GT(st.samplesRecorded, 3 * 16u);
    // Each pause stops collection: with a 16-sample buffer the run
    // records fewer samples than free-running 100 us sampling
    // would (pauses cost wall time), yet far more than a single
    // buffer fill.
    EXPECT_TRUE(session.finished());
}
