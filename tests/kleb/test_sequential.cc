#include <gtest/gtest.h>

#include "kleb/sequential.hh"
#include "stats/summary.hh"
#include "tools/multiplex.hh"
#include "workload/matmul.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using kleb::SequentialProfiler;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

std::function<std::unique_ptr<hw::WorkSource>(Addr, Random)>
matmulFactory()
{
    return [](Addr base, Random rng) {
        return std::unique_ptr<hw::WorkSource>(
            workload::makeMatMulLoop({256}, base, rng).release());
    };
}

} // namespace

TEST(Sequential, MergesEightEventsExactly)
{
    SequentialProfiler::Options opts;
    opts.costs = quietCosts();
    opts.period = msToTicks(1);
    opts.eventSets = {
        {hw::HwEvent::instRetired, hw::HwEvent::branchRetired,
         hw::HwEvent::loadRetired, hw::HwEvent::storeRetired},
        {hw::HwEvent::arithMul, hw::HwEvent::fpOpsRetired,
         hw::HwEvent::llcReference, hw::HwEvent::llcMiss},
    };
    SequentialProfiler::Result res =
        SequentialProfiler::profile(matmulFactory(), opts);

    ASSERT_EQ(res.runs.size(), 2u);
    EXPECT_GT(res.total(hw::HwEvent::instRetired), 0u);
    EXPECT_GT(res.total(hw::HwEvent::arithMul), 0u);

    // Ground truth: one unmonitored run with the same seed.
    kernel::System sys(opts.machine, opts.seed, opts.costs);
    Random rng = sys.forkRng(0x5e9 + opts.seed);
    auto wl = matmulFactory()(0x100000000ULL, rng);
    Process *p = sys.kernel().createWorkload("t", wl.get(), 0);
    sys.kernel().startProcess(p);
    sys.run();
    const hw::EventVector &truth =
        p->execContext()->totalEvents();

    // Deterministic replay: every architectural event matches the
    // single-run truth exactly.
    for (hw::HwEvent ev :
         {hw::HwEvent::instRetired, hw::HwEvent::branchRetired,
          hw::HwEvent::loadRetired, hw::HwEvent::storeRetired,
          hw::HwEvent::arithMul, hw::HwEvent::fpOpsRetired}) {
        EXPECT_EQ(res.total(ev), at(truth, ev))
            << hw::eventName(ev);
    }
}

TEST(Sequential, DeterministicReplayAcrossRuns)
{
    SequentialProfiler::Options opts;
    opts.costs = quietCosts();
    opts.period = msToTicks(1);
    // The same set twice must produce byte-identical totals.
    opts.eventSets = {
        {hw::HwEvent::instRetired, hw::HwEvent::llcMiss},
        {hw::HwEvent::instRetired, hw::HwEvent::llcMiss},
    };
    SequentialProfiler::Result res =
        SequentialProfiler::profile(matmulFactory(), opts);
    ASSERT_EQ(res.runs.size(), 2u);
    EXPECT_EQ(res.runs[0].lifetime, res.runs[1].lifetime);
    EXPECT_EQ(res.runs[0].samples, res.runs[1].samples);
}

TEST(Sequential, CostsOneRunPerSet)
{
    SequentialProfiler::Options opts;
    opts.costs = quietCosts();
    opts.period = msToTicks(1);
    opts.eventSets = {
        {hw::HwEvent::instRetired},
        {hw::HwEvent::llcMiss},
        {hw::HwEvent::branchRetired},
    };
    SequentialProfiler::Result res =
        SequentialProfiler::profile(matmulFactory(), opts);
    ASSERT_EQ(res.runs.size(), 3u);
    // The paper's drawback: total profiling time ~ sets x runtime.
    EXPECT_GT(res.totalTime, 2 * res.runs[0].lifetime);
}

TEST(Sequential, BeatsMultiplexingOnBurstyPrograms)
{
    // The section-VI trade-off, end to end: sequential runs are
    // exact where multiplexing misestimates.
    auto factory = matmulFactory();

    SequentialProfiler::Options opts;
    opts.costs = quietCosts();
    opts.period = msToTicks(1);
    opts.eventSets = {
        {hw::HwEvent::branchRetired, hw::HwEvent::loadRetired,
         hw::HwEvent::storeRetired, hw::HwEvent::arithMul},
        {hw::HwEvent::branchMispredicted, hw::HwEvent::arithDiv,
         hw::HwEvent::fpOpsRetired, hw::HwEvent::llcMiss},
    };
    SequentialProfiler::Result seq =
        SequentialProfiler::profile(factory, opts);

    kernel::System sys(opts.machine, opts.seed, quietCosts());
    Random rng = sys.forkRng(0x5e9 + opts.seed);
    auto wl = factory(0x100000000ULL, rng);
    Process *target =
        sys.kernel().createWorkload("t", wl.get(), 0);
    tools::MultiplexedPmuSession::Options mopts;
    mopts.events = {
        hw::HwEvent::branchRetired, hw::HwEvent::loadRetired,
        hw::HwEvent::storeRetired,  hw::HwEvent::arithMul,
        hw::HwEvent::branchMispredicted, hw::HwEvent::arithDiv,
        hw::HwEvent::fpOpsRetired,  hw::HwEvent::llcMiss};
    mopts.rotateInterval = msToTicks(4);
    tools::MultiplexedPmuSession mux(sys, target->pid(), mopts);
    mux.arm();
    sys.kernel().startProcess(target);
    sys.run();
    mux.disarm();

    const hw::EventVector &truth =
        target->execContext()->totalEvents();
    auto est = mux.estimates();

    // arithMul fires only in the multiply phase: sequential is
    // exact; the multiplexed estimate carries visible error (the
    // deterministic value here is ~0.4 % — small because matmul is
    // mostly stationary, but categorically nonzero where
    // sequential profiling has none at all).
    double truth_mul =
        static_cast<double>(at(truth, hw::HwEvent::arithMul));
    EXPECT_EQ(seq.total(hw::HwEvent::arithMul),
              at(truth, hw::HwEvent::arithMul));
    double mux_err = stats::pctDiff(est[3], truth_mul);
    EXPECT_GT(mux_err, 0.1);
}
