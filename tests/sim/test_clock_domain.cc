#include <gtest/gtest.h>

#include "sim/clock_domain.hh"

using namespace klebsim;
using sim::ClockDomain;

TEST(ClockDomain, PeriodFromFrequency)
{
    ClockDomain ghz(1e9);
    EXPECT_EQ(ghz.period(), 1000u); // 1 ns in ps

    ClockDomain i7(2.67e9);
    EXPECT_EQ(i7.period(), 375u); // 374.5 ps rounds to 375
}

TEST(ClockDomain, CyclesToTicksRoundTrip)
{
    ClockDomain clk(2e9); // 500 ps period
    EXPECT_EQ(clk.cyclesToTicks(4), 2000u);
    EXPECT_EQ(clk.ticksToCycles(2000), 4u);
    EXPECT_EQ(clk.ticksToCycles(1999), 3u);
    EXPECT_EQ(clk.ticksToCyclesCeil(1999), 4u);
    EXPECT_EQ(clk.ticksToCyclesCeil(2000), 4u);
    EXPECT_EQ(clk.ticksToCyclesCeil(2001), 5u);
}

TEST(ClockDomain, TickLiterals)
{
    using namespace ticks_literals;
    EXPECT_EQ(1_us, 1000000u);
    EXPECT_EQ(1_ms, 1000000000u);
    EXPECT_EQ(2_s, 2000000000000u);
    EXPECT_EQ(usToTicks(1.5), 1500000u);
    EXPECT_NEAR(ticksToSec(secToTicks(0.25)), 0.25, 1e-12);
    EXPECT_NEAR(ticksToUs(usToTicks(123.0)), 123.0, 1e-9);
}
