#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>

#include "sim/inline_callable.hh"

using klebsim::sim::InlineCallable;

TEST(InlineCallable, InvokesStoredLambda)
{
    int fired = 0;
    InlineCallable cb([&fired] { ++fired; });
    cb();
    cb();
    EXPECT_EQ(fired, 2);
}

TEST(InlineCallable, DefaultIsEmpty)
{
    InlineCallable cb;
    EXPECT_FALSE(static_cast<bool>(cb));
    InlineCallable stored([] {});
    EXPECT_TRUE(static_cast<bool>(stored));
}

TEST(InlineCallable, StoresFunctionPointer)
{
    static int calls = 0;
    calls = 0;
    InlineCallable cb(+[] { ++calls; });
    cb();
    EXPECT_EQ(calls, 1);
}

TEST(InlineCallable, MutableStatePersistsAcrossInvocations)
{
    int observed = 0;
    InlineCallable cb([n = 0, &observed]() mutable {
        observed = ++n;
    });
    cb();
    cb();
    cb();
    EXPECT_EQ(observed, 3);
}

TEST(InlineCallable, MoveTransfersOwnership)
{
    int fired = 0;
    InlineCallable a([&fired] { ++fired; });
    InlineCallable b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_TRUE(static_cast<bool>(b));
    b();
    EXPECT_EQ(fired, 1);
}

TEST(InlineCallable, MoveAssignReleasesPreviousTarget)
{
    auto old_state = std::make_shared<int>(1);
    auto new_state = std::make_shared<int>(2);
    InlineCallable target([keep = old_state] { (void)keep; });
    EXPECT_EQ(old_state.use_count(), 2);

    target = InlineCallable([keep = new_state] { (void)keep; });
    EXPECT_EQ(old_state.use_count(), 1)
        << "old captures must be destroyed on move-assign";
    EXPECT_EQ(new_state.use_count(), 2);
    target();
}

TEST(InlineCallable, ResetReleasesCaptures)
{
    auto state = std::make_shared<int>(42);
    InlineCallable cb([keep = state] { (void)keep; });
    EXPECT_EQ(state.use_count(), 2);
    cb.reset();
    EXPECT_EQ(state.use_count(), 1);
    EXPECT_FALSE(static_cast<bool>(cb));
}

TEST(InlineCallable, DestructorReleasesCaptures)
{
    auto state = std::make_shared<int>(42);
    {
        InlineCallable cb([keep = state] { (void)keep; });
        EXPECT_EQ(state.use_count(), 2);
    }
    EXPECT_EQ(state.use_count(), 1);
}

TEST(InlineCallable, HeapFallbackForOversizedCaptures)
{
    // A capture list larger than the inline buffer still works (it
    // just isn't allocation-free).
    std::array<std::uint64_t, 16> big{};
    big.fill(7);
    auto state = std::make_shared<int>(0);
    static_assert(sizeof(big) + sizeof(state) >
                  InlineCallable::inlineSize);

    InlineCallable cb([big, keep = state] {
        std::uint64_t sum = 0;
        for (std::uint64_t v : big)
            sum += v;
        *keep = static_cast<int>(sum);
    });
    EXPECT_EQ(state.use_count(), 2);

    InlineCallable moved(std::move(cb));
    moved();
    EXPECT_EQ(*state, 7 * 16);

    moved.reset();
    EXPECT_EQ(state.use_count(), 1);
}

TEST(InlineCallable, SmallCaptureFitsInline)
{
    // The hot-path shape — a `this`-like pointer plus a word — must
    // be storable inline (compile-time guarantee the event queue's
    // allocation-free claim rests on).
    struct HotShape
    {
        void *self;
        std::uint64_t arg;
        void operator()() const {}
    };
    static_assert(sizeof(HotShape) <= InlineCallable::inlineSize);
    InlineCallable cb(HotShape{nullptr, 0});
    cb();
}

TEST(InlineCallableDeath, InvokingEmptyPanics)
{
    InlineCallable cb;
    EXPECT_DEATH(cb(), "empty InlineCallable");
}
