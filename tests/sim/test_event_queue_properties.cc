/**
 * @file
 * Property test: the intrusive two-level event queue against a
 * straightforward reference model (sorted by the documented total
 * order: when, then priority, then salted seq) under randomized
 * schedule / deschedule / reschedule / run / salt-change sequences.
 * Any divergence in dispatch order, timing, or bookkeeping between
 * the two implementations is a bug in the fast one.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "base/random.hh"
#include "sim/event_queue.hh"

using namespace klebsim;

namespace
{

/** Same splitmix64 tie-break the queue documents. */
std::uint64_t
mixSeq(std::uint64_t seq, std::uint64_t salt)
{
    if (salt == 0)
        return seq;
    std::uint64_t z = seq + salt * 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

struct RecordingEvent : sim::Event
{
    RecordingEvent(int id, std::vector<int> *log)
        : id_(id), log_(log)
    {
    }

    void process() override { log_->push_back(id_); }

    void setPrio(int p) { setPriority(p); }

    int id_;
    std::vector<int> *log_;
};

/** Reference implementation of the queue's ordering contract. */
class ModelQueue
{
  public:
    void
    schedule(int id, Tick when, int prio)
    {
        pending_.push_back({when, prio, nextSeq_++, id});
    }

    void
    deschedule(int id)
    {
        auto it = std::find_if(
            pending_.begin(), pending_.end(),
            [id](const Pending &p) { return p.id == id; });
        ASSERT_NE(it, pending_.end());
        pending_.erase(it);
    }

    void setSalt(std::uint64_t salt) { salt_ = salt; }

    bool
    scheduled(int id) const
    {
        return std::any_of(
            pending_.begin(), pending_.end(),
            [id](const Pending &p) { return p.id == id; });
    }

    Tick
    nextTick() const
    {
        return pending_.empty() ? maxTick : front()->when;
    }

    bool
    runOne()
    {
        if (pending_.empty())
            return false;
        auto it = front();
        cur_ = it->when;
        ++processed_;
        log.push_back(it->id);
        pending_.erase(it);
        return true;
    }

    std::uint64_t
    runUntil(Tick limit)
    {
        std::uint64_t n = 0;
        while (!pending_.empty() && front()->when <= limit) {
            runOne();
            ++n;
        }
        if (cur_ < limit)
            cur_ = limit;
        return n;
    }

    std::uint64_t
    runAll()
    {
        std::uint64_t n = 0;
        while (runOne())
            ++n;
        return n;
    }

    Tick curTick() const { return cur_; }
    std::size_t size() const { return pending_.size(); }
    std::uint64_t processed() const { return processed_; }

    std::vector<int> log;

  private:
    struct Pending
    {
        Tick when;
        int prio;
        std::uint64_t seq;
        int id;
    };

    std::vector<Pending>::const_iterator
    front() const
    {
        return std::min_element(
            pending_.begin(), pending_.end(),
            [this](const Pending &a, const Pending &b) {
                if (a.when != b.when)
                    return a.when < b.when;
                if (a.prio != b.prio)
                    return a.prio < b.prio;
                return mixSeq(a.seq, salt_) < mixSeq(b.seq, salt_);
            });
    }

    std::vector<Pending>::iterator
    front()
    {
        auto it = std::as_const(*this).front();
        return pending_.begin() + (it - pending_.cbegin());
    }

    std::vector<Pending> pending_;
    Tick cur_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t salt_ = 0;
    std::uint64_t processed_ = 0;
};

constexpr int priorities[] = {
    sim::Event::timerPriority, sim::Event::interruptPriority,
    sim::Event::defaultPriority, sim::Event::schedulerPriority,
    sim::Event::statsPriority,
};

void
runScenario(std::uint64_t seed)
{
    SCOPED_TRACE("seed " + std::to_string(seed));
    Random rng(seed);
    sim::EventQueue eq;
    ModelQueue model;

    std::vector<int> realLog;
    constexpr int population = 24;
    std::vector<std::unique_ptr<RecordingEvent>> events;
    events.reserve(population);
    for (int i = 0; i < population; ++i)
        events.push_back(
            std::make_unique<RecordingEvent>(i, &realLog));

    for (int step = 0; step < 600; ++step) {
        const int id = static_cast<int>(rng.below(population));
        RecordingEvent &ev = *events[id];
        const std::uint32_t op = rng.below(100);

        if (op < 40) {
            // (Re)schedule: small tick range forces same-tick bins.
            const Tick when =
                eq.curTick() + 1 + rng.below(40);
            const int prio = priorities[rng.below(
                static_cast<std::uint32_t>(std::size(priorities)))];
            if (ev.scheduled()) {
                eq.deschedule(&ev);
                model.deschedule(id);
            }
            ev.setPrio(prio);
            eq.schedule(&ev, when);
            model.schedule(id, when, prio);
        } else if (op < 55) {
            if (ev.scheduled()) {
                eq.deschedule(&ev);
                model.deschedule(id);
            }
        } else if (op < 70) {
            EXPECT_EQ(eq.runOne(), model.runOne());
        } else if (op < 85) {
            const Tick limit = eq.curTick() + rng.below(60);
            EXPECT_EQ(eq.runUntil(limit), model.runUntil(limit));
        } else {
            const std::uint64_t salt =
                rng.below(4) == 0 ? 0 : rng.next64();
            eq.setTieBreakSalt(salt);
            model.setSalt(salt);
        }

        ASSERT_EQ(eq.size(), model.size());
        ASSERT_EQ(eq.curTick(), model.curTick());
        ASSERT_EQ(eq.nextTick(), model.nextTick());
        ASSERT_EQ(ev.scheduled(), model.scheduled(id));
    }

    EXPECT_EQ(eq.runAll(), model.runAll());
    ASSERT_EQ(eq.eventsProcessed(), model.processed());
    ASSERT_EQ(realLog, model.log)
        << "dispatch order diverged from the reference model";
}

TEST(EventQueueProperties, MatchesReferenceModelAcrossSeeds)
{
    for (std::uint64_t seed = 1; seed <= 16; ++seed)
        runScenario(seed);
}

} // anonymous namespace
