#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

using namespace klebsim;
using sim::Event;
using sim::EventFunctionWrapper;
using sim::EventQueue;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextTick(), maxTick);
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleLambda(30, [&] { order.push_back(3); });
    eq.scheduleLambda(10, [&] { order.push_back(1); });
    eq.scheduleLambda(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickPriorityOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleLambda(10, [&] { order.push_back(2); },
                      Event::defaultPriority);
    eq.scheduleLambda(10, [&] { order.push_back(1); },
                      Event::timerPriority);
    eq.scheduleLambda(10, [&] { order.push_back(3); },
                      Event::statsPriority);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickSamePriorityFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.scheduleLambda(10, [&order, i] { order.push_back(i); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleLambda(10, [&] { ++fired; });
    eq.scheduleLambda(20, [&] { ++fired; });
    eq.scheduleLambda(30, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 20u);
    EXPECT_EQ(eq.size(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.curTick(), 500u);
}

TEST(EventQueue, RunOne)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleLambda(5, [&] { ++fired; });
    EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, EventsScheduledDuringProcessing)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    eq.scheduleLambda(10, [&] {
        ticks.push_back(eq.curTick());
        eq.scheduleLambda(25, [&] { ticks.push_back(eq.curTick()); });
    });
    eq.runAll();
    EXPECT_EQ(ticks, (std::vector<Tick>{10, 25}));
}

TEST(EventQueue, CallerOwnedEventReschedule)
{
    EventQueue eq;
    int fired = 0;
    EventFunctionWrapper ev([&] { ++fired; }, "test-ev");
    eq.schedule(&ev, 10);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 10u);
    eq.reschedule(&ev, 50);
    EXPECT_EQ(ev.when(), 50u);
    eq.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(ev.scheduled());
}

TEST(EventQueue, Deschedule)
{
    EventQueue eq;
    int fired = 0;
    EventFunctionWrapper ev([&] { ++fired; }, "test-ev");
    eq.schedule(&ev, 10);
    eq.deschedule(&ev);
    eq.runAll();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CancelLambda)
{
    EventQueue eq;
    int fired = 0;
    Event *ev = eq.scheduleLambda(10, [&] { ++fired; });
    eq.cancelLambda(ev);
    eq.runAll();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, PeriodicSelfRescheduling)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> tick = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleLambda(eq.curTick() + 100, tick);
    };
    eq.scheduleLambda(100, tick);
    eq.runAll();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.curTick(), 500u);
    EXPECT_EQ(eq.eventsProcessed(), 5u);
}

TEST(EventQueue, RunUntilLimitEqualsCurTick)
{
    EventQueue eq;
    eq.runUntil(100);
    ASSERT_EQ(eq.curTick(), 100u);

    // Nothing due: a degenerate run neither advances time nor fires.
    EXPECT_EQ(eq.runUntil(eq.curTick()), 0u);
    EXPECT_EQ(eq.curTick(), 100u);

    // Events at exactly the limit are due and must fire.
    int fired = 0;
    eq.scheduleLambda(100, [&] { ++fired; });
    eq.scheduleLambda(101, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(eq.curTick()), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 100u);
    EXPECT_EQ(eq.size(), 1u);
}

TEST(EventQueue, AutoDeleteEventReschedulesItself)
{
    EventQueue eq;
    int fired = 0;
    Event *ev = nullptr;
    ev = eq.scheduleLambda(10, [&] {
        if (++fired < 3)
            eq.reschedule(ev, eq.curTick() + 10);
    }, Event::defaultPriority, "self-resched");
    eq.runAll();
    // The wrapper must survive each dispatch it re-arms from and be
    // reclaimed only after the run it doesn't re-arm.
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.curTick(), 30u);
    EXPECT_EQ(eq.eventsProcessed(), 3u);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, DestructionWithCallerOwnedEvents)
{
    int fired = 0;
    EventFunctionWrapper ev([&] { ++fired; }, "outlives-queue");
    {
        EventQueue eq;
        eq.schedule(&ev, 100);
        EXPECT_TRUE(ev.scheduled());
    }
    // The dying queue must unlink the event instead of deleting it
    // (or leaving it "scheduled", which would panic ev's destructor).
    EXPECT_FALSE(ev.scheduled());
    EXPECT_EQ(fired, 0);

    EventQueue eq2;
    eq2.schedule(&ev, 5);
    eq2.runAll();
    EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelLambdaAfterDeschedule)
{
    EventQueue eq;
    int fired = 0;
    Event *ev = eq.scheduleLambda(10, [&] { ++fired; });
    eq.deschedule(ev);
    EXPECT_FALSE(ev->scheduled());
    // The wrapper is still owed its deletion.
    eq.cancelLambda(ev);
    eq.runAll();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, TieBreakSaltRebuildsPendingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.scheduleLambda(10, [&order, i] { order.push_back(i); });
    // Changing the salt with events already pending must re-sort
    // them, not corrupt the set.
    eq.setTieBreakSalt(0x1234);
    EXPECT_EQ(eq.tieBreakSalt(), 0x1234u);
    EXPECT_EQ(eq.size(), 8u);
    eq.runAll();

    std::vector<int> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));

    // Back to salt 0 restores the documented FIFO contract.
    eq.setTieBreakSalt(0);
    std::vector<int> order2;
    for (int i = 0; i < 4; ++i)
        eq.scheduleLambda(eq.curTick() + 5,
                          [&order2, i] { order2.push_back(i); });
    eq.runAll();
    EXPECT_EQ(order2, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, SaltOnNonEmptyQueuePreservesPendingMultiset)
{
    // Pending events across several ticks and priorities: flipping
    // the salt may reorder same-(tick, priority) ties, but must not
    // lose, duplicate, or re-time any pending event.
    EventQueue eq;
    std::vector<std::pair<Tick, int>> fired;
    std::vector<std::pair<Tick, int>> expected;
    int next_id = 0;
    for (Tick when : {10u, 10u, 10u, 20u, 20u, 30u}) {
        for (int prio :
             {Event::timerPriority, Event::defaultPriority}) {
            const int id = next_id++;
            expected.emplace_back(when, id);
            eq.scheduleLambda(when,
                              [&fired, &eq, id] {
                                  fired.emplace_back(eq.curTick(),
                                                     id);
                              },
                              prio);
        }
    }
    ASSERT_EQ(eq.size(), expected.size());

    eq.setTieBreakSalt(0x5eedULL);
    EXPECT_EQ(eq.size(), expected.size());
    EXPECT_EQ(eq.nextTick(), 10u);

    eq.runAll();
    ASSERT_EQ(fired.size(), expected.size());
    // Every event fired exactly once, at its original tick.
    std::sort(fired.begin(), fired.end(),
              [](const auto &a, const auto &b) {
                  return a.second < b.second;
              });
    std::sort(expected.begin(), expected.end(),
              [](const auto &a, const auto &b) {
                  return a.second < b.second;
              });
    EXPECT_EQ(fired, expected);
}

TEST(EventQueue, ListenerSeesActivityOnlyWhileAttached)
{
    struct CountingListener : sim::EventQueueListener
    {
        int schedules = 0, deschedules = 0, dispatches = 0;
        void onSchedule(const Event &, Tick) override
        { ++schedules; }
        void onDeschedule(const Event &, Tick) override
        { ++deschedules; }
        void onDispatch(const Event &, Tick) override
        { ++dispatches; }
    };

    EventQueue eq;
    CountingListener listener;

    // Activity before attach is invisible (the no-listener fast
    // path must also be correct, not just fast).
    eq.scheduleLambda(10, [] {});
    eq.runAll();
    EXPECT_EQ(listener.schedules, 0);

    eq.addListener(&listener);
    Event *ev = eq.scheduleLambda(20, [] {});
    eq.cancelLambda(ev);
    eq.scheduleLambda(30, [] {});
    eq.runAll();
    EXPECT_EQ(listener.schedules, 2);
    EXPECT_EQ(listener.deschedules, 1);
    EXPECT_EQ(listener.dispatches, 1);

    // After detach the queue goes quiet again.
    eq.removeListener(&listener);
    eq.scheduleLambda(40, [] {});
    eq.runAll();
    EXPECT_EQ(listener.schedules, 2);
    EXPECT_EQ(listener.dispatches, 1);
}

TEST(EventQueue, LambdaWrapperIsRecycled)
{
    // Steady-state one-shot scheduling must reuse the retired
    // wrapper (the freelist) instead of allocating a fresh one.
    EventQueue eq;
    int fired = 0;
    Event *first = eq.scheduleLambda(10, [&] { ++fired; });
    eq.runAll();
    Event *second = eq.scheduleLambda(20, [&] { ++fired; });
    EXPECT_EQ(first, second)
        << "retired wrapper was not recycled";
    eq.runAll();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.eventsProcessed(), 2u);
}

TEST(EventQueue, RecycledWrapperDropsCapturesAfterDispatch)
{
    // Pooled wrappers must release captured state when the event
    // retires (exactly when `delete` used to run), not hold it
    // until the wrapper is reused.
    EventQueue eq;
    auto state = std::make_shared<int>(7);
    eq.scheduleLambda(10, [keep = state] { (void)keep; });
    EXPECT_EQ(state.use_count(), 2);
    eq.runAll();
    EXPECT_EQ(state.use_count(), 1);

    // cancelLambda must drop captures the same way.
    Event *ev = eq.scheduleLambda(20, [keep = state] { (void)keep; });
    EXPECT_EQ(state.use_count(), 2);
    eq.cancelLambda(ev);
    EXPECT_EQ(state.use_count(), 1);
}

TEST(EventQueueDeath, RescheduleNull)
{
    EventQueue eq;
    EXPECT_DEATH(eq.reschedule(nullptr, 10), "null");
}

TEST(EventQueueDeath, CancelLambdaOnCallerOwnedEvent)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "owned");
    eq.schedule(&ev, 10);
    EXPECT_DEATH(eq.cancelLambda(&ev), "caller-owned");
    eq.deschedule(&ev);
}

TEST(EventQueueDeath, PastScheduling)
{
    EventQueue eq;
    eq.scheduleLambda(100, [] {});
    eq.runAll();
    EXPECT_DEATH(eq.scheduleLambda(50, [] {}), "past");
}

TEST(EventQueueDeath, DoubleSchedule)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "ev");
    eq.schedule(&ev, 10);
    EXPECT_DEATH(eq.schedule(&ev, 20), "already scheduled");
    eq.deschedule(&ev);
}
