#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace klebsim;
using sim::Event;
using sim::EventFunctionWrapper;
using sim::EventQueue;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.nextTick(), maxTick);
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleLambda(30, [&] { order.push_back(3); });
    eq.scheduleLambda(10, [&] { order.push_back(1); });
    eq.scheduleLambda(20, [&] { order.push_back(2); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickPriorityOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.scheduleLambda(10, [&] { order.push_back(2); },
                      Event::defaultPriority);
    eq.scheduleLambda(10, [&] { order.push_back(1); },
                      Event::timerPriority);
    eq.scheduleLambda(10, [&] { order.push_back(3); },
                      Event::statsPriority);
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickSamePriorityFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.scheduleLambda(10, [&order, i] { order.push_back(i); });
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleLambda(10, [&] { ++fired; });
    eq.scheduleLambda(20, [&] { ++fired; });
    eq.scheduleLambda(30, [&] { ++fired; });
    EXPECT_EQ(eq.runUntil(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 20u);
    EXPECT_EQ(eq.size(), 1u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue eq;
    eq.runUntil(500);
    EXPECT_EQ(eq.curTick(), 500u);
}

TEST(EventQueue, RunOne)
{
    EventQueue eq;
    int fired = 0;
    eq.scheduleLambda(5, [&] { ++fired; });
    EXPECT_TRUE(eq.runOne());
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.runOne());
}

TEST(EventQueue, EventsScheduledDuringProcessing)
{
    EventQueue eq;
    std::vector<Tick> ticks;
    eq.scheduleLambda(10, [&] {
        ticks.push_back(eq.curTick());
        eq.scheduleLambda(25, [&] { ticks.push_back(eq.curTick()); });
    });
    eq.runAll();
    EXPECT_EQ(ticks, (std::vector<Tick>{10, 25}));
}

TEST(EventQueue, CallerOwnedEventReschedule)
{
    EventQueue eq;
    int fired = 0;
    EventFunctionWrapper ev([&] { ++fired; }, "test-ev");
    eq.schedule(&ev, 10);
    EXPECT_TRUE(ev.scheduled());
    EXPECT_EQ(ev.when(), 10u);
    eq.reschedule(&ev, 50);
    EXPECT_EQ(ev.when(), 50u);
    eq.runAll();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(ev.scheduled());
}

TEST(EventQueue, Deschedule)
{
    EventQueue eq;
    int fired = 0;
    EventFunctionWrapper ev([&] { ++fired; }, "test-ev");
    eq.schedule(&ev, 10);
    eq.deschedule(&ev);
    eq.runAll();
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, CancelLambda)
{
    EventQueue eq;
    int fired = 0;
    Event *ev = eq.scheduleLambda(10, [&] { ++fired; });
    eq.cancelLambda(ev);
    eq.runAll();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, PeriodicSelfRescheduling)
{
    EventQueue eq;
    int fired = 0;
    std::function<void()> tick = [&] {
        ++fired;
        if (fired < 5)
            eq.scheduleLambda(eq.curTick() + 100, tick);
    };
    eq.scheduleLambda(100, tick);
    eq.runAll();
    EXPECT_EQ(fired, 5);
    EXPECT_EQ(eq.curTick(), 500u);
    EXPECT_EQ(eq.eventsProcessed(), 5u);
}

TEST(EventQueueDeath, PastScheduling)
{
    EventQueue eq;
    eq.scheduleLambda(100, [] {});
    eq.runAll();
    EXPECT_DEATH(eq.scheduleLambda(50, [] {}), "past");
}

TEST(EventQueueDeath, DoubleSchedule)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "ev");
    eq.schedule(&ev, 10);
    EXPECT_DEATH(eq.schedule(&ev, 20), "already scheduled");
    eq.deschedule(&ev);
}
