#include <gtest/gtest.h>

#include <vector>

#include "bench_util.hh"

using klebsim::bench::BenchArgs;

namespace
{

BenchArgs
parseOf(std::vector<const char *> argv)
{
    argv.insert(argv.begin(), "bench");
    return BenchArgs::parse(
        static_cast<int>(argv.size()),
        const_cast<char **>(argv.data()));
}

} // namespace

TEST(BenchArgs, Defaults)
{
    BenchArgs args = parseOf({});
    EXPECT_EQ(args.runs, 0);
    EXPECT_FALSE(args.quick);
    EXPECT_FALSE(args.csv);
    EXPECT_EQ(args.jobs,
              klebsim::bench::TrialPool::defaultJobs());
    EXPECT_EQ(args.runsOr(7), 7);
}

TEST(BenchArgs, ParsesAllFlags)
{
    BenchArgs args = parseOf(
        {"--runs", "12", "--jobs", "3", "--quick", "--csv"});
    EXPECT_EQ(args.runs, 12);
    EXPECT_EQ(args.jobs, 3u);
    EXPECT_TRUE(args.quick);
    EXPECT_TRUE(args.csv);
    EXPECT_EQ(args.runsOr(7), 12);
}

// Regression for the silent std::atoi parse: bad values must take
// the usage/exit-2 path, never fall back to the bench default.


TEST(BenchArgsDeathTest, RejectsNonNumericRuns)
{
    EXPECT_EXIT(parseOf({"--runs", "abc"}),
                testing::ExitedWithCode(2), "usage:");
}

TEST(BenchArgsDeathTest, RejectsNegativeRuns)
{
    EXPECT_EXIT(parseOf({"--runs", "-5"}),
                testing::ExitedWithCode(2), "usage:");
}

TEST(BenchArgsDeathTest, RejectsZeroRuns)
{
    EXPECT_EXIT(parseOf({"--runs", "0"}),
                testing::ExitedWithCode(2), "usage:");
}

TEST(BenchArgsDeathTest, RejectsTrailingGarbage)
{
    EXPECT_EXIT(parseOf({"--runs", "3x"}),
                testing::ExitedWithCode(2), "usage:");
}

TEST(BenchArgsDeathTest, RejectsOverflowingRuns)
{
    EXPECT_EXIT(parseOf({"--runs", "99999999999999999999"}),
                testing::ExitedWithCode(2), "usage:");
}

TEST(BenchArgsDeathTest, RejectsZeroAndBadJobs)
{
    EXPECT_EXIT(parseOf({"--jobs", "0"}),
                testing::ExitedWithCode(2), "usage:");
    EXPECT_EXIT(parseOf({"--jobs", "-1"}),
                testing::ExitedWithCode(2), "usage:");
    EXPECT_EXIT(parseOf({"--jobs", "many"}),
                testing::ExitedWithCode(2), "usage:");
}

TEST(BenchArgsDeathTest, RejectsMissingValueAndUnknownFlag)
{
    EXPECT_EXIT(parseOf({"--runs"}),
                testing::ExitedWithCode(2), "usage:");
    EXPECT_EXIT(parseOf({"--jobs"}),
                testing::ExitedWithCode(2), "usage:");
    EXPECT_EXIT(parseOf({"--frobnicate"}),
                testing::ExitedWithCode(2), "usage:");
}
