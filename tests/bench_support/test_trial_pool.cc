#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "analysis/event_trace.hh"
#include "analysis/lockset.hh"
#include "bench_support/trial_pool.hh"
#include "kernel/system.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using bench::TrialPool;
using bench::splitmix64;
using bench::trialSeed;

namespace
{

/**
 * One small full-simulation trial: fresh machine, seeded workload,
 * full event trace.  Returns the trace fingerprint — the strongest
 * observable a trial has (every schedule/dispatch the run made).
 */
std::uint64_t
traceFingerprint(std::uint64_t seed)
{
    kernel::System sys(hw::MachineConfig::corei7_920(), seed);
    analysis::EventTrace trace;
    sys.eq().addListener(&trace);
    workload::FixedWorkSource src =
        workload::computeSource(20, 100000, 2.0);
    kernel::Process *p =
        sys.kernel().createWorkload("w", &src, 0);
    sys.kernel().startProcess(p);
    sys.run();
    std::uint64_t fp = trace.fingerprint();
    sys.eq().removeListener(&trace);
    return fp;
}

} // namespace

TEST(TrialPool, DefaultJobsIsPositive)
{
    EXPECT_GE(TrialPool::defaultJobs(), 1u);
    EXPECT_EQ(TrialPool(0).jobs(), TrialPool::defaultJobs());
    EXPECT_EQ(TrialPool(7).jobs(), 7u);
}

TEST(TrialPool, MapCommitsResultsInTrialOrder)
{
    TrialPool pool(4);
    std::vector<std::size_t> out =
        pool.map(100, [](std::size_t i) { return i * 3; });
    ASSERT_EQ(out.size(), 100u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * 3);
}

TEST(TrialPool, ParallelMatchesSequentialOnFullSimTrials)
{
    // The determinism guarantee the benches rely on: jobs=1 and
    // jobs=8 produce identical result vectors, verified with full
    // EventTrace fingerprints of independent simulated machines.
    auto trial = [](std::size_t i) {
        return traceFingerprint(trialSeed(42, 0, i));
    };
    std::vector<std::uint64_t> sequential =
        TrialPool(1).map(6, trial);
    std::vector<std::uint64_t> parallel =
        TrialPool(8).map(6, trial);
    EXPECT_EQ(sequential, parallel);

    // Distinct trials are genuinely distinct machines.
    std::set<std::uint64_t> distinct(sequential.begin(),
                                     sequential.end());
    EXPECT_EQ(distinct.size(), sequential.size());
}

TEST(TrialPool, MoreJobsThanTrials)
{
    TrialPool pool(16);
    std::vector<std::size_t> out =
        pool.map(3, [](std::size_t i) { return i + 1; });
    EXPECT_EQ(out, (std::vector<std::size_t>{1, 2, 3}));

    // Zero trials is a no-op.
    EXPECT_TRUE(pool.map(0, [](std::size_t i) { return i; })
                    .empty());
}

TEST(TrialPool, ExceptionInTrialPropagates)
{
    TrialPool pool(4);
    EXPECT_THROW(
        pool.runIndexed(16,
                        [](std::size_t i) {
                            if (i == 5)
                                throw std::runtime_error("trial 5");
                        }),
        std::runtime_error);

    // Sequential path (jobs=1) propagates too, and stops at the
    // failing trial.
    std::atomic<std::size_t> ran{0};
    TrialPool seq(1);
    EXPECT_THROW(seq.runIndexed(10,
                                [&](std::size_t i) {
                                    if (i == 3)
                                        throw std::runtime_error(
                                            "trial 3");
                                    ++ran;
                                }),
                 std::runtime_error);
    EXPECT_EQ(ran.load(), 3u);
}

TEST(TrialPool, ExceptionMessageIsLowestIndexed)
{
    // With failures on several trials, the rethrown one must be the
    // lowest-indexed — what a sequential run would have hit first.
    TrialPool pool(4);
    try {
        pool.runIndexed(32, [](std::size_t i) {
            if (i % 2 == 1)
                throw std::runtime_error(
                    "trial " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "trial 1");
    }
}

TEST(TrialPool, SeedMixerDecorrelatesAdjacentTrials)
{
    // Reference splitmix64 vector (seed 0, first output).
    EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);

    // Adjacent trials, adjacent streams, and adjacent bases must
    // all land on distinct seeds.
    std::set<std::uint64_t> seeds;
    for (std::uint64_t base = 0; base < 4; ++base)
        for (std::uint64_t stream = 0; stream < 6; ++stream)
            for (std::uint64_t trial = 0; trial < 32; ++trial)
                seeds.insert(trialSeed(base, stream, trial));
    EXPECT_EQ(seeds.size(), 4u * 6u * 32u);

    // And must not be the old correlated base+trial derivation.
    EXPECT_NE(trialSeed(1, 0, 1), 2u);
    EXPECT_NE(trialSeed(1, 0, 1), trialSeed(1, 0, 0) + 1);
}

TEST(TrialPool, LocksetCheckedRunIsClean)
{
    // The pool's own shared state (the failure slot, the per-trial
    // result slots, the simulated machines inside each trial) must
    // satisfy the Eraser lockset discipline: fan real simulation
    // trials out across workers with the checker installed and
    // expect zero reports.  A double-dispatched trial index or a
    // System shared across workers would fire here.
    klebsim::analysis::ScopedLockset scoped;
    TrialPool pool(4);
    auto prints = pool.map(8, [](std::size_t i) {
        return traceFingerprint(0x10c5e7 + i);
    });
    EXPECT_EQ(prints.size(), 8u);
    for (const auto &r : scoped->reports())
        ADD_FAILURE() << r.str();
    EXPECT_GT(scoped->accessesObserved(), 8u)
        << "instrumentation hooks never fired";
}

TEST(TrialPool, LocksetSeesFailureSlotLocking)
{
    // The failure slot's TrackedMutex reports through the sink even
    // when trials throw from several workers at once; the lockset
    // over the slot must stay consistent (no reports).
    klebsim::analysis::ScopedLockset scoped;
    TrialPool pool(4);
    try {
        pool.runIndexed(8, [](std::size_t i) {
            throw std::runtime_error("trial " + std::to_string(i));
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &) {
    }
    for (const auto &r : scoped->reports())
        ADD_FAILURE() << r.str();
}

TEST(TrialPool, TryMapRecordsFailuresInAscendingOrder)
{
    TrialPool pool(4);
    std::vector<bench::TrialFailure> failures;
    auto slots = pool.tryMap(
        12,
        [](std::size_t i) -> std::size_t {
            if (i % 3 == 1)
                throw std::runtime_error("died on trial " +
                                         std::to_string(i));
            return i * i;
        },
        &failures);

    ASSERT_EQ(slots.size(), 12u);
    ASSERT_EQ(failures.size(), 4u); // trials 1, 4, 7, 10
    for (std::size_t f = 0; f + 1 < failures.size(); ++f)
        EXPECT_LT(failures[f].trial, failures[f + 1].trial);
    for (const auto &f : failures) {
        EXPECT_EQ(f.trial % 3, 1u);
        EXPECT_FALSE(slots[f.trial].has_value());
        EXPECT_NE(f.message.find(std::to_string(f.trial)),
                  std::string::npos);
    }
    for (std::size_t i = 0; i < slots.size(); ++i) {
        if (i % 3 == 1)
            continue;
        ASSERT_TRUE(slots[i].has_value());
        EXPECT_EQ(*slots[i], i * i);
    }
}

TEST(TrialPool, ShardDeterminismSurvivesWorkerDeath)
{
    // The fleet contract: a shard whose trial dies must never
    // perturb any surviving shard's result.  Sweep 16 base seeds;
    // for each, compare a healthy full-sim run against a run where
    // some trials throw mid-pool, at different jobs values.
    constexpr std::size_t trials = 6;
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        TrialPool healthy_pool(1);
        auto healthy = healthy_pool.map(trials, [&](std::size_t i) {
            return traceFingerprint(trialSeed(seed, 0xdead, i));
        });

        // Seed-dependent casualty pattern so the sweep covers
        // first/middle/last-trial death.
        auto dies = [&](std::size_t i) {
            return splitmix64(seed ^ i) % 3 == 0;
        };

        TrialPool pool(4);
        std::vector<bench::TrialFailure> failures;
        auto slots = pool.tryMap(
            trials,
            [&](std::size_t i) {
                if (dies(i))
                    throw std::runtime_error("worker death");
                return traceFingerprint(trialSeed(seed, 0xdead, i));
            },
            &failures);

        std::size_t expected_dead = 0;
        for (std::size_t i = 0; i < trials; ++i)
            if (dies(i))
                ++expected_dead;
        EXPECT_EQ(failures.size(), expected_dead)
            << "seed " << seed;

        for (std::size_t i = 0; i < trials; ++i) {
            if (dies(i)) {
                EXPECT_FALSE(slots[i].has_value())
                    << "seed " << seed << " trial " << i;
            } else {
                ASSERT_TRUE(slots[i].has_value())
                    << "seed " << seed << " trial " << i;
                EXPECT_EQ(*slots[i], healthy[i])
                    << "seed " << seed << " trial " << i
                    << ": surviving shard diverged";
            }
        }
    }
}
