#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "workload/linpack.hh"
#include "workload/matmul.hh"

using namespace klebsim;
using namespace klebsim::workload;

namespace
{

kernel::CostModel
quietCosts()
{
    kernel::CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

/** Run a workload to completion on a fresh system. */
Tick
runToCompletion(hw::WorkSource *src, double &flops_out)
{
    kernel::System sys(hw::MachineConfig::corei7_920(), 1,
                       quietCosts());
    kernel::Process *p =
        sys.kernel().createWorkload("w", src, 0);
    sys.kernel().startProcess(p);
    sys.run();
    EXPECT_EQ(p->state(), kernel::ProcState::zombie);
    flops_out = p->execContext()->flopsDone();
    return p->lifetime();
}

} // namespace

TEST(Linpack, FlopsFormula)
{
    LinpackParams params;
    params.n = 100;
    params.trials = 2;
    EXPECT_NEAR(linpackFlops(params),
                2.0 * (2.0 / 3.0 * 1e6 + 2e4), 1.0);
}

TEST(Linpack, SmallRunCompletesWithExpectedFlops)
{
    LinpackParams params;
    params.n = 300;
    params.trials = 2;
    params.blocksPerTrial = 4;
    auto wl = makeLinpack(params, 0x10000000, Random(1));
    double flops = 0;
    Tick lifetime = runToCompletion(wl.get(), flops);
    EXPECT_NEAR(flops, linpackFlops(params),
                linpackFlops(params) * 0.01);
    EXPECT_GT(lifetime, 0u);
    // GFLOPS should be in a plausible HPC range for the model.
    double gflops = linpackGflops(params, lifetime);
    EXPECT_GT(gflops, 5.0);
    EXPECT_LT(gflops, 80.0);
}

TEST(Linpack, PhaseStructure)
{
    LinpackParams params;
    params.trials = 3;
    params.blocksPerTrial = 5;
    auto wl = makeLinpack(params, 0, Random(1));
    // init + setup + trials * blocks * 3 phases.
    EXPECT_GT(wl->totalInstructions(), 0u);
    EXPECT_DOUBLE_EQ(wl->totalFlops(), linpackFlops(params));
}

TEST(MatMul, FlopsFormula)
{
    EXPECT_DOUBLE_EQ(matmulFlops({1000}), 2e9);
}

TEST(MatMul, LoopSlowerThanMkl)
{
    MatMulParams params{320};
    auto loop = makeMatMulLoop(params, 0x10000000, Random(1));
    auto mkl = makeMatMulMkl(params, 0x10000000, Random(1));
    double f1 = 0, f2 = 0;
    Tick t_loop = runToCompletion(loop.get(), f1);
    Tick t_mkl = runToCompletion(mkl.get(), f2);
    EXPECT_NEAR(f1, matmulFlops(params), matmulFlops(params) * 0.01);
    EXPECT_NEAR(f2, matmulFlops(params), matmulFlops(params) * 0.01);
    // The triple loop is an order of magnitude slower (paper: ~2 s
    // vs <100 ms at n=1000).
    EXPECT_GT(static_cast<double>(t_loop),
              8.0 * static_cast<double>(t_mkl));
}

TEST(MatMul, NominalDurationsMatchPaperScale)
{
    // Full-size n=1000 runs are bench territory; verify the scaling
    // trend on n=500: loop time ~ n^3.
    MatMulParams small{250};
    MatMulParams big{500};
    auto wl_small = makeMatMulLoop(small, 0x10000000, Random(1));
    auto wl_big = makeMatMulLoop(big, 0x10000000, Random(1));
    double f = 0;
    Tick t_small = runToCompletion(wl_small.get(), f);
    Tick t_big = runToCompletion(wl_big.get(), f);
    double ratio = static_cast<double>(t_big) /
                   static_cast<double>(t_small);
    EXPECT_GT(ratio, 5.0);
    EXPECT_LT(ratio, 12.0);
}
