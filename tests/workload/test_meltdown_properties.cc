#include <gtest/gtest.h>

#include <tuple>

#include "kernel/system.hh"
#include "workload/meltdown.hh"

using namespace klebsim;
using namespace klebsim::workload;

namespace
{

/** (secret, retries) sweep. */
using MeltdownParam = std::tuple<std::string, std::uint32_t>;

class MeltdownSweep
    : public ::testing::TestWithParam<MeltdownParam>
{
};

} // namespace

/**
 * Property: the Flush+Reload side channel recovers any secret, for
 * any retry count, on any seed — because only the leaked line is
 * cache-resident at probe time, the inference is structural, not
 * statistical.
 */
TEST_P(MeltdownSweep, RecoversSecret)
{
    auto [secret, retries] = GetParam();
    kernel::System sys(hw::MachineConfig::corei7_920(),
                       37 + retries);
    MeltdownParams params;
    params.secret = secret;
    params.retriesPerByte = retries;
    MeltdownWorkload attack(params, 0x300000000ULL,
                            sys.forkRng(13));
    kernel::Process *p =
        sys.kernel().createWorkload("m", &attack, 0);
    sys.kernel().startProcess(p);
    sys.run();

    EXPECT_EQ(attack.recoveredSecret(), secret);
    EXPECT_DOUBLE_EQ(attack.recoveryAccuracy(), 1.0);
}

/** Property: attack cost scales linearly with retries. */
TEST_P(MeltdownSweep, CostScalesWithRetries)
{
    auto [secret, retries] = GetParam();
    if (retries < 4)
        GTEST_SKIP() << "scaling needs a few retries";

    auto run = [&](std::uint32_t r) {
        kernel::System sys(hw::MachineConfig::corei7_920(), 40);
        MeltdownParams params;
        params.secret = secret;
        params.retriesPerByte = r;
        MeltdownWorkload attack(params, 0x300000000ULL,
                                sys.forkRng(13));
        kernel::Process *p =
            sys.kernel().createWorkload("m", &attack, 0);
        sys.kernel().startProcess(p);
        sys.run();
        return p->lifetime();
    };
    Tick t1 = run(retries);
    Tick t2 = run(retries * 2);
    // Doubling retries adds attack time; total includes the fixed
    // printer portion, so the ratio is between 1 and 2.
    EXPECT_GT(t2, t1);
    EXPECT_LT(static_cast<double>(t2),
              2.0 * static_cast<double>(t1));
}

INSTANTIATE_TEST_SUITE_P(
    Secrets, MeltdownSweep,
    ::testing::Values(
        MeltdownParam{"A", 1},
        MeltdownParam{"hello world", 2},
        MeltdownParam{std::string("\x00\x01\xfe\xff", 4), 3},
        MeltdownParam{"The Magic Words are Squeamish Ossifrage",
                      5},
        MeltdownParam{"IISWC2020", 8}),
    [](const ::testing::TestParamInfo<MeltdownParam> &info) {
        return "len" +
               std::to_string(std::get<0>(info.param).size()) +
               "_r" + std::to_string(std::get<1>(info.param));
    });
