#include <gtest/gtest.h>

#include "hw/cpu_core.hh"
#include "workload/phase_workload.hh"

using namespace klebsim;
using namespace klebsim::workload;

namespace
{

struct MemFixture
{
    MemFixture()
        : cfg(hw::MachineConfig::corei7_920()),
          llc("LLC", cfg.llc, Random(2)), mem(cfg, &llc, Random(3))
    {
    }

    hw::MachineConfig cfg;
    hw::Cache llc;
    hw::MemHierarchy mem;
};

Phase
simplePhase(const std::string &name, std::uint64_t instr)
{
    Phase p;
    p.name = name;
    p.instructions = instr;
    p.loadFrac = 0.2;
    p.storeFrac = 0.1;
    p.branchFrac = 0.15;
    p.mem = MemPatternSpec::randomUniform(1 << 20);
    return p;
}

} // namespace

TEST(PhaseWorkload, EmitsExactInstructionBudget)
{
    MemFixture f;
    PhaseWorkload wl("t", {simplePhase("a", 250000)}, 0x1000,
                     Random(1), 100000);
    std::uint64_t total = 0;
    int chunks = 0;
    while (!wl.done()) {
        hw::WorkChunk c = wl.nextChunk(f.mem);
        total += c.instructions;
        ++chunks;
    }
    EXPECT_EQ(total, 250000u);
    EXPECT_EQ(chunks, 3); // 100k + 100k + 50k
    EXPECT_EQ(wl.totalInstructions(), 250000u);
}

TEST(PhaseWorkload, PhaseTransitions)
{
    MemFixture f;
    PhaseWorkload wl("t",
                     {simplePhase("a", 100000),
                      simplePhase("b", 100000)},
                     0x1000, Random(1), 60000);
    EXPECT_EQ(wl.currentPhase(), 0u);
    wl.nextChunk(f.mem); // 60k of a
    EXPECT_EQ(wl.currentPhase(), 0u);
    wl.nextChunk(f.mem); // 40k of a -> phase b
    EXPECT_EQ(wl.currentPhase(), 1u);
    wl.nextChunk(f.mem);
    wl.nextChunk(f.mem);
    EXPECT_TRUE(wl.done());
}

TEST(PhaseWorkload, ChunkMixMatchesFractions)
{
    MemFixture f;
    Phase p = simplePhase("a", 100000);
    p.mulFrac = 0.05;
    p.fpFrac = 0.3;
    PhaseWorkload wl("t", {p}, 0x1000, Random(1), 100000);
    hw::WorkChunk c = wl.nextChunk(f.mem);
    EXPECT_EQ(c.instructions, 100000u);
    EXPECT_EQ(c.loads, 20000u);
    EXPECT_EQ(c.stores, 10000u);
    EXPECT_EQ(c.branches, 15000u);
    EXPECT_EQ(c.muls, 5000u);
    EXPECT_EQ(c.fpops, 30000u);
}

TEST(PhaseWorkload, FlopsSplitAcrossChunks)
{
    MemFixture f;
    Phase p = simplePhase("a", 200000);
    p.flops = 1000.0;
    PhaseWorkload wl("t", {p}, 0x1000, Random(1), 100000);
    hw::WorkChunk c1 = wl.nextChunk(f.mem);
    hw::WorkChunk c2 = wl.nextChunk(f.mem);
    EXPECT_DOUBLE_EQ(c1.flops + c2.flops, 1000.0);
    EXPECT_DOUBLE_EQ(wl.totalFlops(), 1000.0);
}

TEST(PhaseWorkload, ResetReplaysIdentically)
{
    MemFixture f;
    PhaseWorkload wl("t", {simplePhase("a", 150000)}, 0x1000,
                     Random(5), 50000);
    std::vector<Addr> first;
    while (!wl.done()) {
        hw::WorkChunk c = wl.nextChunk(f.mem);
        first.push_back(c.stream ? c.stream->next().addr : 0);
    }
    wl.reset();
    std::size_t i = 0;
    while (!wl.done()) {
        hw::WorkChunk c = wl.nextChunk(f.mem);
        EXPECT_EQ(c.stream ? c.stream->next().addr : 0, first[i++]);
    }
}

TEST(PhaseWorkload, KernelPrivPhases)
{
    MemFixture f;
    Phase p = simplePhase("krn", 50000);
    p.priv = hw::PrivLevel::kernel;
    PhaseWorkload wl("t", {p}, 0x1000, Random(1));
    hw::WorkChunk c = wl.nextChunk(f.mem);
    EXPECT_EQ(c.priv, hw::PrivLevel::kernel);
}

TEST(PhaseWorkload, ZeroInstructionPhaseSkipped)
{
    MemFixture f;
    Phase zero = simplePhase("z", 0);
    PhaseWorkload wl("t", {zero, simplePhase("a", 1000)}, 0x1000,
                     Random(1));
    EXPECT_EQ(wl.currentPhase(), 1u);
    wl.nextChunk(f.mem);
    EXPECT_TRUE(wl.done());
}

TEST(PhaseWorkload, RepeatAndConcatHelpers)
{
    std::vector<Phase> body = {simplePhase("x", 10),
                               simplePhase("y", 20)};
    auto repeated = repeatPhases(body, 3);
    EXPECT_EQ(repeated.size(), 6u);
    EXPECT_EQ(repeated[4].name, "x");
    auto both = concatPhases({simplePhase("pre", 5)}, repeated);
    EXPECT_EQ(both.size(), 7u);
    EXPECT_EQ(both[0].name, "pre");
}
