#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "stats/time_series.hh"
#include "workload/docker.hh"

using namespace klebsim;
using namespace klebsim::workload;

TEST(Docker, CatalogHasNineImages)
{
    const auto &catalog = dockerCatalog();
    ASSERT_EQ(catalog.size(), 9u);
    EXPECT_EQ(catalog.front().name, "ruby");
    EXPECT_EQ(catalog.back().name, "tomcat");
    int memory_intensive = 0;
    for (const auto &spec : catalog)
        memory_intensive += spec.expectMemoryIntensive ? 1 : 0;
    EXPECT_EQ(memory_intensive, 3); // apache, nginx, tomcat
}

TEST(Docker, LookupByName)
{
    EXPECT_EQ(dockerImage("nginx").name, "nginx");
    EXPECT_TRUE(dockerImage("nginx").expectMemoryIntensive);
    EXPECT_FALSE(dockerImage("python").expectMemoryIntensive);
}

TEST(Docker, WorkloadBuilds)
{
    auto wl = makeDockerWorkload(dockerImage("mysql"), 0x10000000,
                                 Random(1));
    ASSERT_NE(wl, nullptr);
    EXPECT_GT(wl->totalInstructions(),
              dockerImage("mysql").instructions);
}

TEST(Docker, ContainerLaunchesShimAndChild)
{
    kernel::System sys;
    DockerImageSpec spec = dockerImage("python");
    spec.instructions = 5000000; // keep the test fast
    auto container = launchContainer(sys.kernel(), spec, 0,
                                     0x10000000, sys.forkRng(1));
    ASSERT_NE(container->shim, nullptr);
    EXPECT_EQ(container->entry, nullptr); // not yet forked

    sys.run();

    ASSERT_NE(container->entry, nullptr);
    EXPECT_EQ(container->entry->ppid(), container->shim->pid());
    EXPECT_EQ(container->shim->state(), kernel::ProcState::zombie);
    EXPECT_EQ(container->entry->state(),
              kernel::ProcState::zombie);
    // The shim outlives the child (it reaps it).
    EXPECT_GE(container->shim->exitTick(),
              container->entry->exitTick());
    // Descendant tracing covers the entry through the shim.
    EXPECT_TRUE(sys.kernel().isDescendantOf(
        container->entry->pid(), container->shim->pid()));
    EXPECT_EQ(container->entry->execContext()
                  ->instructionsRetired(),
              container->workload->totalInstructions());
}

TEST(Docker, InterpreterVsWebServerMissRates)
{
    // Run a scaled-down python and tomcat and compare true LLC miss
    // rates from the execution context: the web server must be far
    // more memory-intensive.
    auto run = [](const char *name) {
        kernel::System sys(hw::MachineConfig::corei7_920(), 3);
        DockerImageSpec spec = dockerImage(name);
        spec.instructions = 30000000;
        auto wl =
            makeDockerWorkload(spec, 0x10000000, sys.forkRng(2));
        kernel::Process *p =
            sys.kernel().createWorkload(name, wl.get(), 0);
        sys.kernel().startProcess(p);
        sys.run();
        const hw::EventVector &ev =
            p->execContext()->totalEvents();
        return stats::mpki(
            static_cast<double>(at(ev, hw::HwEvent::llcMiss)),
            static_cast<double>(
                at(ev, hw::HwEvent::instRetired)));
    };
    double python_mpki = run("python");
    double tomcat_mpki = run("tomcat");
    EXPECT_LT(python_mpki, memoryIntensiveMpki);
    EXPECT_GT(tomcat_mpki, memoryIntensiveMpki);
    EXPECT_GT(tomcat_mpki, 5.0 * python_mpki);
}
