#include <gtest/gtest.h>

#include <set>

#include "workload/address_streams.hh"

using namespace klebsim;
using namespace klebsim::workload;

TEST(Streams, SequentialWalksAndWraps)
{
    auto s = makeAddressStream(MemPatternSpec::sequential(256, 0.0),
                               0x1000, Random(1));
    ASSERT_NE(s, nullptr);
    for (int round = 0; round < 2; ++round) {
        for (Addr off = 0; off < 256; off += 64) {
            hw::MemRef ref = s->next();
            EXPECT_EQ(ref.addr, 0x1000 + off);
            EXPECT_FALSE(ref.write);
        }
    }
}

TEST(Streams, StridedUsesStride)
{
    auto s = makeAddressStream(
        MemPatternSpec::strided(4096, 1024, 0.0), 0, Random(1));
    EXPECT_EQ(s->next().addr, 0u);
    EXPECT_EQ(s->next().addr, 1024u);
    EXPECT_EQ(s->next().addr, 2048u);
    EXPECT_EQ(s->next().addr, 3072u);
    EXPECT_EQ(s->next().addr, 0u);
}

TEST(Streams, RandomStaysInFootprint)
{
    const std::uint64_t footprint = 1 << 20;
    auto s = makeAddressStream(
        MemPatternSpec::randomUniform(footprint), 0x4000000,
        Random(7));
    for (int i = 0; i < 1000; ++i) {
        Addr a = s->next().addr;
        EXPECT_GE(a, 0x4000000u);
        EXPECT_LT(a, 0x4000000u + footprint);
    }
}

TEST(Streams, WriteFractionRespected)
{
    auto s = makeAddressStream(
        MemPatternSpec::randomUniform(1 << 20, 0.25), 0, Random(9));
    int writes = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        writes += s->next().write ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(writes) / n, 0.25, 0.02);
}

TEST(Streams, HotColdConcentration)
{
    const std::uint64_t hot = 4096;
    const std::uint64_t footprint = 1 << 24;
    auto s = makeAddressStream(
        MemPatternSpec::hotCold(hot, footprint, 0.9), 0,
        Random(11));
    int in_hot = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        in_hot += s->next().addr < hot ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(in_hot) / n, 0.9, 0.02);
}

TEST(Streams, PointerChaseVisitsEveryLineOnce)
{
    const std::uint64_t footprint = 64 * 256; // 256 lines
    auto s = makeAddressStream(
        MemPatternSpec::pointerChase(footprint), 0x8000,
        Random(21));
    std::set<Addr> seen;
    for (int i = 0; i < 256; ++i) {
        Addr a = s->next().addr;
        EXPECT_GE(a, 0x8000u);
        EXPECT_LT(a, 0x8000u + footprint);
        EXPECT_EQ(a % 64, 0u);
        seen.insert(a);
    }
    // A single permutation cycle: all 256 lines visited exactly
    // once per lap, then the walk repeats.
    EXPECT_EQ(seen.size(), 256u);
    EXPECT_EQ(s->next().addr, 0x8000u + 0u * 64u); // cycle restart
}

TEST(Streams, PointerChaseIsNotSequential)
{
    auto s = makeAddressStream(
        MemPatternSpec::pointerChase(64 * 1024), 0, Random(22));
    int sequential_steps = 0;
    Addr prev = s->next().addr;
    for (int i = 0; i < 500; ++i) {
        Addr cur = s->next().addr;
        if (cur == prev + 64)
            ++sequential_steps;
        prev = cur;
    }
    // A random permutation has almost no sequential adjacency.
    EXPECT_LT(sequential_steps, 10);
}

TEST(Streams, NonePatternHasNoStream)
{
    EXPECT_EQ(makeAddressStream(MemPatternSpec::none_(), 0,
                                Random(1)),
              nullptr);
}

TEST(Streams, DeterministicForSeed)
{
    auto a = makeAddressStream(
        MemPatternSpec::hotCold(4096, 1 << 20, 0.8), 0, Random(3));
    auto b = makeAddressStream(
        MemPatternSpec::hotCold(4096, 1 << 20, 0.8), 0, Random(3));
    for (int i = 0; i < 500; ++i) {
        hw::MemRef ra = a->next();
        hw::MemRef rb = b->next();
        EXPECT_EQ(ra.addr, rb.addr);
        EXPECT_EQ(ra.write, rb.write);
    }
}
