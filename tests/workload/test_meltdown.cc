#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "stats/time_series.hh"
#include "workload/meltdown.hh"

using namespace klebsim;
using namespace klebsim::workload;

namespace
{

struct RunOutcome
{
    Tick lifetime;
    hw::EventVector events;
};

RunOutcome
runWorkload(hw::WorkSource *src)
{
    kernel::System sys(hw::MachineConfig::corei7_920(), 5);
    kernel::Process *p = sys.kernel().createWorkload("m", src, 0);
    sys.kernel().startProcess(p);
    sys.run();
    EXPECT_EQ(p->state(), kernel::ProcState::zombie);
    return {p->lifetime(), p->execContext()->totalEvents()};
}

} // namespace

TEST(Meltdown, SecretPrinterIsShort)
{
    auto printer = makeSecretPrinter(0x20000000, Random(3));
    RunOutcome out = runWorkload(printer.get());
    // The paper stresses the clean program finishes in <10 ms —
    // too fast for perf's 10 ms timer to produce multiple samples.
    EXPECT_LT(ticksToMs(out.lifetime), 10.0);
    EXPECT_GT(ticksToMs(out.lifetime), 2.0);
}

TEST(Meltdown, AttackRecoversSecretThroughCacheSideChannel)
{
    MeltdownParams params;
    params.secret = "SQUEAMISH";
    params.retriesPerByte = 5;
    MeltdownWorkload attack(params, 0x30000000, Random(4));
    runWorkload(&attack);
    EXPECT_EQ(attack.recoveredSecret(), "SQUEAMISH");
    EXPECT_GT(attack.recoveryAccuracy(), 0.95);
}

TEST(Meltdown, AttackRecoversAllByteValues)
{
    // Exercise low and high byte values (probe-array indexing).
    MeltdownParams params;
    params.secret = std::string("\x01\x7f\x80\xfeZ", 5);
    params.retriesPerByte = 3;
    MeltdownWorkload attack(params, 0x30000000, Random(4));
    runWorkload(&attack);
    EXPECT_EQ(attack.recoveredSecret(), params.secret);
}

TEST(Meltdown, AttackInflatesLlcActivity)
{
    auto printer = makeSecretPrinter(0x20000000, Random(6));
    RunOutcome clean = runWorkload(printer.get());

    MeltdownParams params;
    params.retriesPerByte = 40;
    MeltdownWorkload attack(params, 0x20000000, Random(6));
    RunOutcome attacked = runWorkload(&attack);

    // Fig. 6: LLC references and misses far higher under attack.
    EXPECT_GT(at(attacked.events, hw::HwEvent::llcReference),
              2 * at(clean.events, hw::HwEvent::llcReference));
    EXPECT_GT(at(attacked.events, hw::HwEvent::llcMiss),
              2 * at(clean.events, hw::HwEvent::llcMiss));
    // Fig. 7: the attack also lengthens the run.
    EXPECT_GT(attacked.lifetime, clean.lifetime);
}

TEST(Meltdown, MpkiSignature)
{
    auto printer = makeSecretPrinter(0x20000000, Random(8));
    RunOutcome clean = runWorkload(printer.get());
    double clean_mpki = stats::mpki(
        static_cast<double>(at(clean.events, hw::HwEvent::llcMiss)),
        static_cast<double>(
            at(clean.events, hw::HwEvent::instRetired)));

    MeltdownParams params;
    params.retriesPerByte = 60;
    MeltdownWorkload attack(params, 0x20000000, Random(8));
    RunOutcome attacked = runWorkload(&attack);
    double attack_mpki = stats::mpki(
        static_cast<double>(
            at(attacked.events, hw::HwEvent::llcMiss)),
        static_cast<double>(
            at(attacked.events, hw::HwEvent::instRetired)));

    // Paper section IV-C: 7.52 MPKI clean vs 27.53 under attack.
    EXPECT_GT(clean_mpki, 2.0);
    EXPECT_LT(clean_mpki, 15.0);
    EXPECT_GT(attack_mpki, 2.0 * clean_mpki);
}

TEST(Meltdown, ResetReplays)
{
    MeltdownParams params;
    params.secret = "AB";
    params.retriesPerByte = 2;
    MeltdownWorkload attack(params, 0x30000000, Random(4));
    runWorkload(&attack);
    EXPECT_EQ(attack.recoveredSecret(), "AB");
    attack.reset();
    EXPECT_EQ(attack.recoveredSecret(), "");
    EXPECT_FALSE(attack.done());
    runWorkload(&attack);
    EXPECT_EQ(attack.recoveredSecret(), "AB");
}
