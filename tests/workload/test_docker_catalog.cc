#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "kleb/session.hh"
#include "stats/time_series.hh"
#include "workload/docker.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using klebsim::workload::DockerImageSpec;

namespace
{

/**
 * Catalog sweep: every image must land in its expected MPKI class
 * when measured the way Fig. 5 measures it (through the container
 * shim with descendant tracing), and the container plumbing must
 * behave identically for all of them.
 */
class DockerImageSweep
    : public ::testing::TestWithParam<const char *>
{
};

} // namespace

TEST_P(DockerImageSweep, ClassificationMatchesSpec)
{
    kernel::System sys(hw::MachineConfig::corei7_920(), 23);
    DockerImageSpec spec = workload::dockerImage(GetParam());
    spec.instructions = 30000000;
    auto container = workload::launchContainer(
        sys.kernel(), spec, 0, 0x200000000ULL, sys.forkRng(11));

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired, hw::HwEvent::llcMiss};
    opts.period = 1_ms;
    opts.controllerCore = 1;
    kleb::Session session(sys, opts);
    session.monitor(container->shim, false);
    sys.run();

    hw::EventVector totals = session.finalTotals();
    double mpki = stats::mpki(
        static_cast<double>(at(totals, hw::HwEvent::llcMiss)),
        static_cast<double>(
            at(totals, hw::HwEvent::instRetired)));

    EXPECT_EQ(mpki > workload::memoryIntensiveMpki,
              spec.expectMemoryIntensive)
        << spec.name << " MPKI " << mpki;

    // Container plumbing invariants hold for every image.
    ASSERT_NE(container->entry, nullptr);
    EXPECT_EQ(container->entry->ppid(), container->shim->pid());
    EXPECT_EQ(container->shim->state(), ProcState::zombie);
    EXPECT_EQ(container->entry->state(), ProcState::zombie);
    EXPECT_GE(at(totals, hw::HwEvent::instRetired),
              spec.instructions);
}

TEST_P(DockerImageSweep, WorkloadIsResettable)
{
    kernel::System sys(hw::MachineConfig::corei7_920(), 24);
    DockerImageSpec spec = workload::dockerImage(GetParam());
    spec.instructions = 5000000;
    auto wl = workload::makeDockerWorkload(spec, 0x200000000ULL,
                                           sys.forkRng(12));

    Process *first = sys.kernel().createWorkload("a", wl.get(), 0);
    sys.kernel().startProcess(first);
    sys.run();
    std::uint64_t instr_a =
        first->execContext()->instructionsRetired();

    wl->reset();
    Process *second =
        sys.kernel().createWorkload("b", wl.get(), 0);
    sys.kernel().startProcess(second);
    sys.run();
    EXPECT_EQ(second->execContext()->instructionsRetired(),
              instr_a);
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, DockerImageSweep,
    ::testing::Values("ruby", "golang", "python", "mysql",
                      "traefik", "ghost", "apache", "nginx",
                      "tomcat"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        return std::string(info.param);
    });
