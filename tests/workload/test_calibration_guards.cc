#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "stats/time_series.hh"
#include "workload/linpack.hh"
#include "workload/matmul.hh"
#include "workload/meltdown.hh"

using namespace klebsim;
using namespace klebsim::kernel;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

Tick
runToEnd(hw::WorkSource *src, std::uint64_t seed = 61)
{
    System sys(hw::MachineConfig::corei7_920(), seed,
               quietCosts());
    Process *p = sys.kernel().createWorkload("w", src, 0);
    sys.kernel().startProcess(p);
    sys.run();
    EXPECT_EQ(p->state(), ProcState::zombie);
    return p->lifetime();
}

} // namespace

/**
 * Calibration guards: these pin the workload models to the
 * absolute scales the paper's evaluation depends on.  If a model
 * change moves one of these, the Table I-III reproductions drift —
 * fail here first, with a readable message.
 */
TEST(CalibrationGuards, LinpackGflopsNearPaper)
{
    // Paper: 37.24 GFLOPS raw.  Guard a generous band around it.
    workload::LinpackParams params;
    params.n = 1200;
    params.trials = 2; // 2 trials suffice for the rate
    auto wl = workload::makeLinpack(params, 0x100000000ULL,
                                    Random(3));
    Tick t = runToEnd(wl.get());
    double gflops = workload::linpackGflops(params, t);
    EXPECT_GT(gflops, 30.0) << "LINPACK model too slow";
    EXPECT_LT(gflops, 48.0) << "LINPACK model too fast";
}

TEST(CalibrationGuards, MatmulLoopNominalDuration)
{
    // Paper: ~2 s at n=1000.  Guard at n=640 (scales with n^3):
    // expected ~2.4 s * 0.26 = ~0.63 s.
    auto wl = workload::makeMatMulLoop({640}, 0x100000000ULL,
                                       Random(3));
    double sec = ticksToSec(runToEnd(wl.get()));
    EXPECT_GT(sec, 0.45);
    EXPECT_LT(sec, 0.85);
}

TEST(CalibrationGuards, MklRuntimeUnder100msScale)
{
    // Paper: <100 ms at n=1000; guard the model near that scale.
    auto wl = workload::makeMatMulMkl({1000}, 0x100000000ULL,
                                      Random(3));
    double ms = ticksToMs(runToEnd(wl.get()));
    EXPECT_GT(ms, 70.0);
    EXPECT_LT(ms, 160.0);
}

TEST(CalibrationGuards, MklToLoopSpeedRatio)
{
    // The Table II/III contrast requires the loop version to be
    // ~20x slower than dgemm at equal n.
    auto loop = workload::makeMatMulLoop({500}, 0x100000000ULL,
                                         Random(3));
    auto mkl = workload::makeMatMulMkl({500}, 0x100000000ULL,
                                       Random(3));
    double ratio = static_cast<double>(runToEnd(loop.get())) /
                   static_cast<double>(runToEnd(mkl.get()));
    EXPECT_GT(ratio, 12.0);
    EXPECT_LT(ratio, 35.0);
}

TEST(CalibrationGuards, SecretPrinterMpkiNearPaper)
{
    // Paper: 7.52 MPKI for the clean Meltdown victim.
    System sys(hw::MachineConfig::corei7_920(), 62, quietCosts());
    auto wl = workload::makeSecretPrinter(0x300000000ULL,
                                          sys.forkRng(2));
    Process *p = sys.kernel().createWorkload("w", wl.get(), 0);
    sys.kernel().startProcess(p);
    sys.run();
    const hw::EventVector &ev = p->execContext()->totalEvents();
    double mpki = stats::mpki(
        static_cast<double>(at(ev, hw::HwEvent::llcMiss)),
        static_cast<double>(at(ev, hw::HwEvent::instRetired)));
    EXPECT_GT(mpki, 5.5);
    EXPECT_LT(mpki, 9.5);
}
