// Fixture: raw stdio excused by the fixture allowlist entry
// "printf-family src/allowed/" — must produce zero findings.

#include <cstdio>

namespace fixture
{

void
excused_stdio()
{
    printf("the allowlist carve-out covers this file\n");
}

} // namespace fixture
