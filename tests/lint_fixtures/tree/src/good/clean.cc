// Fixture: every banned spelling below hides where the token
// engine must not look — comments, strings, raw strings — or is a
// lookalike identifier.  This file must produce ZERO findings.

// Comment bait: rand() printf("x") std::chrono::system_clock t.detach()

/* Block-comment bait spanning lines:
   std::random_device rd;
   gate.lock(); gate.unlock();
   new EventFunctionWrapper
*/

#include <string>

namespace fixture
{

const char *stringBait =
    "rand() time(0) printf(fmt) std::cout .detach() mt19937";

const char *rawBait = R"(std::random_device and gate.lock() and
new sim::EventFunctionWrapper spanning
multiple lines)";

// Raw string with an embedded quote: a line scanner that treats the
// first " as the end of the literal leaks `rand(` back into code.
const char *embeddedQuote = R"re(he said "hi" then rand() ran)re";

const char *prefixedBait = u8R"(std::cout << mt19937)";

int
lookalikes(int mytime, int detach_count)
{
    // time_limit( is not time(; strand( is not rand(.
    auto time_limit = [](int v) { return v; };
    auto strand = [](int v) { return v + 1; };
    int grand = strand(time_limit(mytime));
    // .lockable() and .relock() are not .lock().
    struct S
    {
        int lockable() { return 1; }
        int relock() { return 2; }
        int detached() { return 3; }
    } s;
    return grand + s.lockable() + s.relock() + s.detached() +
           detach_count;
}

char
charBait()
{
    return '"'; // a quote as a char literal must not open a string
}

} // namespace fixture
