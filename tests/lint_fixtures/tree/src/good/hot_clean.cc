// Fixture: brace tracking around KLEB_HOT scopes.  The allocations
// here all sit OUTSIDE hot bodies; zero findings expected.

#include <vector>

namespace fixture
{

KLEB_HOT int
hot_sum(const std::vector<int> &v)
{
    int sum = 0;
    for (int x : v) { // nested braces inside the hot body
        sum += x;
    }
    return sum;
}

void
cold_after_hot(std::vector<int> &v)
{
    // The hot body above closed; growth here is legal again.
    v.push_back(hot_sum(v));
    v.reserve(128);
}

struct Holder
{
    KLEB_HOT int
    hot_method() const
    {
        return 5;
    }

    void
    cold_method(std::vector<int> &v)
    {
        v.resize(9);
    }
};

} // namespace fixture
