// Fixture: std::function inside src/sim trips hot-std-function.

#ifndef KLEBSIM_SIM_HOT_CALLBACK_HH
#define KLEBSIM_SIM_HOT_CALLBACK_HH

#include <functional>

namespace fixture
{

struct HotCallback
{
    std::function<void()> fn;
};

} // namespace fixture

#endif // KLEBSIM_SIM_HOT_CALLBACK_HH
