// Fixture: bare lock()/unlock() through value and pointer syntax.

#include <mutex>

namespace fixture
{

std::mutex gate;

void
bad_manual_locking(std::mutex *remote)
{
    gate.lock();
    gate.unlock();
    remote->lock();
    remote->unlock();
}

void
good_raii()
{
    std::lock_guard<std::mutex> hold(gate);
    // Identifiers merely containing lock must NOT match.
    int unlock_count = 0;
    (void)unlock_count;
}

} // namespace fixture
