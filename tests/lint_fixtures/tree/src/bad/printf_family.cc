// Fixture: raw stdio forms the rule must catch.

#include <cstdio>
#include <iostream>

namespace fixture
{

void
bad_stdio(double overhead)
{
    printf("overhead %f\n", overhead);
    fprintf(stderr, "warn\n");
    puts("done");
    std::cout << overhead;
    std::cerr << "oops";
}

} // namespace fixture
