// Fixture: every raw-random form the rule must catch.

#include <cstdlib>
#include <random>

namespace fixture
{

int
bad_rand()
{
    srand(42);
    return rand();
}

unsigned
bad_device()
{
    std::random_device rd;
    std::mt19937 gen(rd());
    std::mt19937_64 wide(1);
    return gen() ^ static_cast<unsigned>(wide());
}

} // namespace fixture
