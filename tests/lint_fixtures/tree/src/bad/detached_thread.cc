// Fixture: detach through value and pointer syntax.

#include <thread>

namespace fixture
{

void
bad_detach(std::thread &t, std::thread *p)
{
    t.detach();
    p->detach();
}

void
good_identifiers()
{
    // detach as a plain identifier must NOT match.
    int detach = 0;
    (void)detach;
}

} // namespace fixture
