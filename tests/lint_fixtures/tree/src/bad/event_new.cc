// Fixture: raw EventFunctionWrapper allocation, qualified or not.

namespace fixture
{

void
bad_wrappers()
{
    auto *a = new EventFunctionWrapper([] {}, "a");
    auto *b = new sim::EventFunctionWrapper([] {}, "b");
    auto *c = new klebsim::sim::EventFunctionWrapper([] {}, "c");
    (void)a;
    (void)b;
    (void)c;
}

} // namespace fixture
