// Fixture: per-CPU state indexed by things that are not core ids.

#include <cstddef>
#include <vector>

namespace fixture
{

struct PerCpuState
{
    int claims;
};

using CoreId = int;

std::vector<PerCpuState> perCpu_;
std::vector<int> per_cpu_rings;

int
bad_indexing(int pid, std::size_t i)
{
    int sum = perCpu_[0].claims;
    sum += perCpu_[pid].claims;
    sum += per_cpu_rings[i];
    for (std::size_t c = 0; c < perCpu_.size(); ++c)
        sum += perCpu_[c].claims;
    return sum;
}

int
good_indexing(CoreId core, std::size_t src_core)
{
    int sum = perCpu_[static_cast<std::size_t>(core)].claims;
    sum += per_cpu_rings[src_core];
    for (std::size_t cpu = 0; cpu < perCpu_.size(); ++cpu)
        sum += perCpu_[cpu].claims;
    // A non-per-CPU container indexed arbitrarily must NOT match.
    std::vector<int> totals(4, 0);
    return sum + totals[src_core % 4];
}

} // namespace fixture
