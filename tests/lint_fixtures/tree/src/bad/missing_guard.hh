// Fixture: header whose guard does not match its path.

#ifndef WRONG_GUARD_NAME_HH
#define WRONG_GUARD_NAME_HH

namespace fixture
{
inline int answer() { return 42; }
} // namespace fixture

#endif // WRONG_GUARD_NAME_HH
