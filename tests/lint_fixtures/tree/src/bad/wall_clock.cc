// Fixture: every wall-clock form the rule must catch.

#include <chrono>
#include <ctime>

namespace fixture
{

void
bad_clocks()
{
    auto a = std::chrono::system_clock::now();
    auto b = std::chrono::steady_clock::now();
    auto c = std::chrono::high_resolution_clock::now();
    (void)a;
    (void)b;
    (void)c;
}

long
bad_time_calls()
{
    long t = time(nullptr);
    struct timeval tv;
    gettimeofday(&tv, nullptr);
    struct tm *lt = localtime(&t);
    (void)lt;
    return t;
}

} // namespace fixture
