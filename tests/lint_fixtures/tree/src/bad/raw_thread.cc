// Fixture: raw thread construction; std::thread:: statics stay legal.

#include <thread>

namespace fixture
{

void
bad_threads()
{
    std::thread worker([] {});
    std::jthread stoppable([] {});
    worker.join();
}

unsigned
good_static_query()
{
    // Nested-name uses are not construction; must NOT match.
    return std::thread::hardware_concurrency();
}

} // namespace fixture
