// Fixture: allocation inside KLEB_HOT bodies; identical code in
// unmarked functions stays legal.

#include <memory>
#include <vector>

namespace fixture
{

KLEB_HOT void
bad_hot_allocs(std::vector<int> &v)
{
    int *leak = new int(7);
    auto owned = std::make_unique<int>(9);
    auto shared = std::make_shared<int>(11);
    v.push_back(1);
    v.emplace_back(2);
    v.resize(32);
    v.reserve(64);
    delete leak;
    (void)owned;
    (void)shared;
}

// A KLEB_HOT declaration with no body must not arm the scope.
KLEB_HOT void declared_only(std::vector<int> &v);

void
good_cold_allocs(std::vector<int> &v)
{
    int *fine = new int(1);
    v.push_back(3);
    delete fine;
}

KLEB_HOT int
good_hot_no_alloc(const std::vector<int> &v)
{
    int sum = 0;
    for (int x : v)
        sum += x;
    return sum;
}

} // namespace fixture
