/**
 * @file
 * Tests for the token-level lint engine (analysis/token_lexer +
 * the structural rule matchers in analysis/lint).
 *
 * Three layers: lexer unit tests (raw strings, comments, literals,
 * line numbers), scope-tracking checks through scanSource, and the
 * migration safety net — a verbatim copy of the retired line-regex
 * engine run side by side with the token engine over the real tree,
 * asserting identical findings, plus a construction where the two
 * must diverge (raw string with embedded quotes) proving the copy
 * is faithful and the token engine is the better of the pair.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "analysis/lint.hh"
#include "analysis/token_lexer.hh"

namespace
{

using klebsim::analysis::lexTokens;
using klebsim::analysis::Linter;
using klebsim::analysis::LintRule;
using klebsim::analysis::TokKind;
using klebsim::analysis::Token;

std::vector<std::string>
kindsAndTexts(const std::vector<Token> &toks)
{
    std::vector<std::string> out;
    for (const Token &t : toks) {
        const char *k = "?";
        switch (t.kind) {
          case TokKind::identifier: k = "id"; break;
          case TokKind::number: k = "num"; break;
          case TokKind::stringLit: k = "str"; break;
          case TokKind::charLit: k = "chr"; break;
          case TokKind::punct: k = "p"; break;
        }
        out.push_back(std::string(k) + ":" + t.text);
    }
    return out;
}

TEST(TokenLexer, IdentifiersNumbersAndFusedPuncts)
{
    auto toks = lexTokens("std::mt19937 x = obj->run(1'000ull);");
    EXPECT_EQ(kindsAndTexts(toks),
              (std::vector<std::string>{
                  "id:std", "p:::", "id:mt19937", "id:x", "p:=",
                  "id:obj", "p:->", "id:run", "p:(",
                  "num:1'000ull", "p:)", "p:;"}));
}

TEST(TokenLexer, LineNumbersAreOneBasedAndTrackNewlines)
{
    auto toks = lexTokens("a\nb\n\n  c d\n");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].line, 1u);
    EXPECT_EQ(toks[1].line, 2u);
    EXPECT_EQ(toks[2].line, 4u);
    EXPECT_EQ(toks[3].line, 4u);
}

TEST(TokenLexer, LineCommentsAreInvisible)
{
    auto toks = lexTokens("x // rand() printf(\"y\") .detach()\nz");
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_TRUE(toks[0].isIdent("x"));
    EXPECT_TRUE(toks[1].isIdent("z"));
    EXPECT_EQ(toks[1].line, 2u);
}

TEST(TokenLexer, BlockCommentsSpanLinesAndCountThem)
{
    auto toks = lexTokens("a /* rand()\n srand()\n mt19937 */ b");
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_TRUE(toks[1].isIdent("b"));
    EXPECT_EQ(toks[1].line, 3u);
}

TEST(TokenLexer, StringsSwallowEmbeddedKeywords)
{
    auto toks = lexTokens("log(\"rand() and time( here\");");
    ASSERT_EQ(toks.size(), 5u);
    EXPECT_EQ(toks[2].kind, TokKind::stringLit);
    // Nothing inside the literal surfaced as an identifier.
    for (const Token &t : toks)
        EXPECT_FALSE(t.isIdent("rand")) << t.text;
}

TEST(TokenLexer, EscapedQuotesStayInsideTheString)
{
    auto toks = lexTokens(R"(f("say \"rand()\"") g)");
    ASSERT_EQ(toks.size(), 5u);
    EXPECT_EQ(toks[2].kind, TokKind::stringLit);
    EXPECT_TRUE(toks[4].isIdent("g"));
}

TEST(TokenLexer, RawStringsSpanLinesAndKeepEmbeddedQuotes)
{
    const std::string src =
        "before R\"x(line one \"quoted\" rand()\nline two)x\" after";
    auto toks = lexTokens(src);
    ASSERT_EQ(toks.size(), 3u);
    EXPECT_TRUE(toks[0].isIdent("before"));
    EXPECT_EQ(toks[1].kind, TokKind::stringLit);
    EXPECT_TRUE(toks[2].isIdent("after"));
    EXPECT_EQ(toks[2].line, 2u); // raw string ate one newline
}

TEST(TokenLexer, RawStringDelimiterMustMatch)
{
    // A plain )" inside the body does not close a )x" raw string.
    auto toks = lexTokens("R\"x(inner )\" still inside)x\" tail");
    ASSERT_EQ(toks.size(), 2u);
    EXPECT_EQ(toks[0].kind, TokKind::stringLit);
    EXPECT_TRUE(toks[1].isIdent("tail"));
}

TEST(TokenLexer, EncodingPrefixesAttachToLiterals)
{
    auto toks = lexTokens("u8R\"(mt19937)\" L\"wide\" u'c' x");
    ASSERT_EQ(toks.size(), 4u);
    EXPECT_EQ(toks[0].kind, TokKind::stringLit);
    EXPECT_EQ(toks[1].kind, TokKind::stringLit);
    EXPECT_EQ(toks[2].kind, TokKind::charLit);
    EXPECT_TRUE(toks[3].isIdent("x"));
}

TEST(TokenLexer, QuoteAsCharLiteralDoesNotOpenAString)
{
    auto toks = lexTokens("a = '\"'; rand();");
    bool sawRand = false;
    for (const Token &t : toks)
        sawRand = sawRand || t.isIdent("rand");
    EXPECT_TRUE(sawRand); // the code after the char literal is code
}

TEST(TokenLexer, UnterminatedStringStopsAtEndOfLine)
{
    auto toks = lexTokens("s = \"oops\nnext");
    ASSERT_GE(toks.size(), 3u);
    EXPECT_TRUE(toks.back().isIdent("next"));
    EXPECT_EQ(toks.back().line, 2u);
}

TEST(TokenLexer, PpNumbersLumpExponentsAndHex)
{
    auto toks = lexTokens("1.5e-3 0x1fULL .25f");
    ASSERT_EQ(toks.size(), 3u);
    for (const Token &t : toks)
        EXPECT_EQ(t.kind, TokKind::number) << t.text;
}

// ---------------------------------------------------------------
// Scope tracking through the public scanner.

std::multiset<std::pair<std::string, std::size_t>>
findings(const Linter &linter, const std::string &rel,
         const std::string &src)
{
    std::multiset<std::pair<std::string, std::size_t>> out;
    for (const auto &v : linter.scanSource(rel, src))
        out.insert({v.rule, v.line});
    return out;
}

TEST(TokenLint, HotAllocTracksNestedBracesAndDisarm)
{
    Linter linter;
    const std::string src =
        "KLEB_HOT void f(std::vector<int> &v);\n" // decl: disarmed
        "void cold(std::vector<int> &v)\n"
        "{\n"
        "    v.push_back(1);\n" // line 4: legal, not hot
        "}\n"
        "KLEB_HOT void g(std::vector<int> &v)\n"
        "{\n"
        "    if (true) {\n"
        "        v.reserve(2);\n" // line 9: nested in hot body
        "    }\n"
        "    int *p = new int;\n" // line 11: hot body
        "}\n"
        "void after(std::vector<int> &v)\n"
        "{\n"
        "    v.resize(3);\n" // line 15: hot body closed
        "}\n";
    auto got = findings(linter, "src/x/f.cc", src);
    decltype(got) want{{"hot-alloc", 9}, {"hot-alloc", 11}};
    EXPECT_EQ(got, want);
}

TEST(TokenLint, OneFindingPerRulePerLine)
{
    Linter linter;
    // Two bare locks on one line still report once.
    auto got = findings(linter, "src/x/f.cc",
                        "void f() { a.lock(); b.lock(); }\n");
    decltype(got) want{{"mutex-raii", 1}};
    EXPECT_EQ(got, want);
}

// ---------------------------------------------------------------
// Legacy-engine parity.
//
// A verbatim copy of the retired per-line scanner: strip comments
// and string bodies line-wise, then regex-search each line.  The
// token engine must reproduce its findings exactly on the real
// tree; the divergence test below shows the one input class where
// the copy misfires and the token engine does not.

std::vector<std::string>
legacyStrip(const std::vector<std::string> &lines)
{
    std::vector<std::string> out;
    out.reserve(lines.size());
    bool in_block = false;
    for (const std::string &line : lines) {
        std::string kept;
        for (std::size_t i = 0; i < line.size();) {
            if (in_block) {
                if (line.compare(i, 2, "*/") == 0) {
                    in_block = false;
                    i += 2;
                } else {
                    ++i;
                }
                continue;
            }
            if (line.compare(i, 2, "/*") == 0) {
                in_block = true;
                i += 2;
                continue;
            }
            if (line.compare(i, 2, "//") == 0)
                break;
            char c = line[i];
            if (c == '"' || c == '\'') {
                kept += c;
                ++i;
                while (i < line.size() && line[i] != c) {
                    if (line[i] == '\\')
                        ++i;
                    ++i;
                }
                if (i < line.size()) {
                    kept += c;
                    ++i;
                }
                continue;
            }
            kept += c;
            ++i;
        }
        out.push_back(std::move(kept));
    }
    return out;
}

bool
legacyApplies(const LintRule &rule, const std::string &rel)
{
    for (const std::string &dir : rule.dirs)
        if (rel.starts_with(dir + "/"))
            return true;
    return false;
}

std::multiset<std::pair<std::string, std::size_t>>
legacyFindings(const Linter &linter, const std::string &rel,
               const std::string &src)
{
    std::vector<std::string> lines;
    std::istringstream in(src);
    std::string line;
    while (std::getline(in, line))
        lines.push_back(line);
    const std::vector<std::string> code = legacyStrip(lines);

    std::multiset<std::pair<std::string, std::size_t>> out;
    for (const LintRule &rule : linter.rules()) {
        if (rule.pattern.empty() || !legacyApplies(rule, rel) ||
            linter.allowed(rule.id, rel))
            continue;
        std::regex re(rule.pattern, std::regex::ECMAScript);
        for (std::size_t i = 0; i < code.size(); ++i)
            if (std::regex_search(code[i], re))
                out.insert({rule.id, i + 1});
    }
    return out;
}

std::multiset<std::pair<std::string, std::size_t>>
tokenFindings(const Linter &linter, const std::string &rel,
              const std::string &src)
{
    // Restrict to the rules the legacy engine also ran (pattern
    // rules; include-guard and the token-only structural rules have
    // no legacy counterpart).
    std::set<std::string> comparable;
    for (const LintRule &rule : linter.rules())
        if (!rule.pattern.empty())
            comparable.insert(rule.id);
    std::multiset<std::pair<std::string, std::size_t>> out;
    for (const auto &v : linter.scanSource(rel, src))
        if (comparable.count(v.rule))
            out.insert({v.rule, v.line});
    return out;
}

TEST(TokenLint, MatchesLegacyRegexEngineOnRealTree)
{
    namespace fs = std::filesystem;
    if (!fs::exists(fs::path("src") / "analysis" / "lint.cc"))
        GTEST_SKIP() << "run from the repo root to check the tree";

    Linter linter;
    std::string err;
    if (fs::exists(fs::path("tools") / "lint_allowlist.txt")) {
        ASSERT_TRUE(linter.loadAllowlist(
            "tools/lint_allowlist.txt", &err))
            << err;
    }

    std::size_t files = 0;
    for (const char *top : {"src", "bench", "examples"}) {
        if (!fs::exists(top))
            continue;
        for (const auto &entry :
             fs::recursive_directory_iterator(top)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext =
                entry.path().extension().string();
            if (ext != ".cc" && ext != ".hh" && ext != ".cpp" &&
                ext != ".h")
                continue;
            const std::string rel =
                entry.path().generic_string();
            std::ifstream in(entry.path(),
                             std::ios::in | std::ios::binary);
            std::ostringstream buf;
            buf << in.rdbuf();
            const std::string src = buf.str();
            EXPECT_EQ(tokenFindings(linter, rel, src),
                      legacyFindings(linter, rel, src))
                << "engines disagree on " << rel;
            ++files;
        }
    }
    EXPECT_GT(files, 50u) << "tree walk found suspiciously little";
}

TEST(TokenLint, DivergesFromLegacyOnRawStringWithEmbeddedQuotes)
{
    // Three embedded quotes leave the legacy scanner convinced it
    // is back in code when rand() appears — the false-positive
    // class that motivated the token engine.  This doubles as proof
    // the legacy copy above is the real (flawed) article, so the
    // parity test is not comparing the token engine to itself.
    Linter linter;
    const std::string src =
        "const char *t = R\"x(a\"b\"c\" rand() tail)x\";\n";
    auto legacy = legacyFindings(linter, "src/x/f.cc", src);
    auto token = tokenFindings(linter, "src/x/f.cc", src);
    decltype(legacy) misfire{{"raw-random", 1}};
    EXPECT_EQ(legacy, misfire);
    EXPECT_TRUE(token.empty());
}

} // anonymous namespace
