#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/determinism.hh"
#include "analysis/event_trace.hh"
#include "fault/fault_injector.hh"
#include "kernel/system.hh"
#include "kleb/session.hh"
#include "sim/event_queue.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using analysis::DeterminismHarness;
using analysis::DeterminismReport;
using analysis::EventTrace;
using analysis::Observation;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

/**
 * One complete K-LEB monitoring session: build a fresh machine,
 * monitor a workload to completion, expose the full event trace
 * and every counter-visible observable.
 */
Observation
klebScenario(std::uint64_t tie_salt)
{
    Observation obs;
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    sys.eq().setTieBreakSalt(tie_salt);

    EventTrace trace;
    sys.eq().addListener(&trace);

    FixedWorkSource src = computeSource(10, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.period = 100_us;
    opts.idealTimer = true;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    hw::EventVector totals = session.finalTotals();
    for (std::size_t e = 0; e < totals.size(); ++e)
        obs.counters.emplace_back(
            "total." + std::to_string(e), totals[e]);
    obs.counters.emplace_back("samples",
                              session.samples().size());
    obs.counters.emplace_back("events.processed",
                              sys.eq().eventsProcessed());
    obs.counters.emplace_back("final.tick", sys.now());

    // Fold every sample's counts in so a single perturbed sample
    // cannot hide behind identical totals.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const kleb::Sample &s : session.samples()) {
        h = (h ^ s.timestamp) * 0x100000001b3ULL;
        for (std::uint8_t i = 0; i < s.numEvents; ++i)
            h = (h ^ s.counts[i]) * 0x100000001b3ULL;
    }
    obs.counters.emplace_back("samples.hash", h);

    sys.eq().removeListener(&trace);
    obs.trace = trace;
    return obs;
}

/**
 * The same session with the fault injector degrading the machine:
 * narrowed counters, flaky chardev ops, timer misses.  (seed, plan)
 * must fully determine every injection, so the faulted run replays
 * bit-for-bit too.
 */
Observation
faultedKlebScenario(std::uint64_t tie_salt)
{
    Observation obs;
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    sys.eq().setTieBreakSalt(tie_salt);

    EventTrace trace;
    sys.eq().addListener(&trace);

    fault::FaultPlan plan;
    EXPECT_TRUE(fault::FaultPlan::parse(
        "seed=5;pmu.width=28;ioctl.fail=0.2;read.fail=0.2;"
        "timer.miss=0.05;timer.spike=0.05",
        &plan));
    fault::FaultInjector injector(plan, 1);
    injector.attach(sys);

    FixedWorkSource src = computeSource(10, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.period = 100_us;
    opts.controllerTuning.drainStallHook = injector.readerStallHook();
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    hw::EventVector totals = session.finalTotals();
    for (std::size_t e = 0; e < totals.size(); ++e)
        obs.counters.emplace_back(
            "total." + std::to_string(e), totals[e]);
    obs.counters.emplace_back("samples",
                              session.samples().size());
    obs.counters.emplace_back("retries", session.retries());
    obs.counters.emplace_back("wraps",
                              session.status().counterWraps);
    obs.counters.emplace_back("injected",
                              injector.totalInjected());
    obs.counters.emplace_back("final.tick", sys.now());

    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const kleb::Sample &s : session.samples()) {
        h = (h ^ s.timestamp) * 0x100000001b3ULL;
        for (std::uint8_t i = 0; i < s.numEvents; ++i)
            h = (h ^ s.counts[i]) * 0x100000001b3ULL;
    }
    obs.counters.emplace_back("samples.hash", h);

    sys.eq().removeListener(&trace);
    obs.trace = trace;
    return obs;
}

/**
 * A migration-heavy SMP session: the target bounces across cores
 * while one core cycles offline and back and the PMU is contended.
 * Parameterized by machine seed so a sweep can prove bit-for-bit
 * replay across many distinct interleavings.
 */
Observation
smpScenario(std::uint64_t machine_seed, std::uint64_t tie_salt)
{
    Observation obs;
    System sys(hw::MachineConfig::corei7_920(), machine_seed,
               quietCosts());
    sys.eq().setTieBreakSalt(tie_salt);

    EventTrace trace;
    sys.eq().addListener(&trace);

    fault::FaultPlan plan;
    EXPECT_TRUE(fault::FaultPlan::parse(
        "cpu.offline=2ms;cpu.offline.core=0;cpu.online=5ms;"
        "task.migrate=600us;pmu.contend=0.3",
        &plan));
    fault::FaultInjector injector(plan, machine_seed);
    injector.attach(sys);

    FixedWorkSource src = computeSource(8, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.period = 100_us;
    kleb::Session session(sys, opts);
    session.monitor(target);
    injector.scheduleCpuHotplug(sys);
    injector.scheduleTaskMigration(sys, target);
    sys.run(secToTicks(5.0));

    kleb::KLebStatus st = session.status();
    obs.counters.emplace_back("samples",
                              session.samples().size());
    obs.counters.emplace_back("migrations", st.targetMigrations);
    obs.counters.emplace_back("markers", st.coreMarkers);
    obs.counters.emplace_back("contention", st.contentionEvents);
    obs.counters.emplace_back("emitted", st.samplesEmitted);
    obs.counters.emplace_back("injected",
                              injector.totalInjected());
    obs.counters.emplace_back("final.tick", sys.now());

    // Fold timestamps, attribution cores and counts so a single
    // perturbed sample cannot hide behind identical totals.
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const kleb::Sample &s : session.samples()) {
        h = (h ^ s.timestamp) * 0x100000001b3ULL;
        h = (h ^ s.core) * 0x100000001b3ULL;
        h = (h ^ static_cast<std::uint64_t>(s.cause)) *
            0x100000001b3ULL;
        for (std::uint8_t i = 0; i < s.numEvents; ++i)
            h = (h ^ s.counts[i]) * 0x100000001b3ULL;
    }
    obs.counters.emplace_back("samples.hash", h);

    sys.eq().removeListener(&trace);
    obs.trace = trace;
    return obs;
}

} // namespace

TEST(Determinism, SmpSixteenSeedSweepReplaysBitForBit)
{
    // 16 machine seeds, each checked for replay AND for tie-break
    // robustness: migration-heavy hotplug schedules must come down
    // to the same bytes however same-tick events are permuted.
    for (std::uint64_t seed = 1; seed <= 16; ++seed) {
        DeterminismReport report = DeterminismHarness::check(
            [seed](std::uint64_t tie_salt) {
                return smpScenario(seed, tie_salt);
            });
        EXPECT_TRUE(report.deterministic)
            << "seed " << seed << ": " << report.summary();
        EXPECT_FALSE(report.tieBreakSensitive)
            << "seed " << seed << ": " << report.summary();
    }
}

TEST(Determinism, KlebSessionReplaysBitForBit)
{
    DeterminismReport report =
        DeterminismHarness::checkReplay(klebScenario);
    EXPECT_TRUE(report.deterministic) << report.summary();
    EXPECT_FALSE(report.divergence.has_value()) << report.summary();
    EXPECT_TRUE(report.counterMismatches.empty())
        << report.summary();
}

TEST(Determinism, FaultedKlebSessionReplaysBitForBit)
{
    DeterminismReport report =
        DeterminismHarness::checkReplay(faultedKlebScenario);
    EXPECT_TRUE(report.deterministic) << report.summary();
    EXPECT_FALSE(report.divergence.has_value()) << report.summary();
    EXPECT_TRUE(report.counterMismatches.empty())
        << report.summary();
}

TEST(Determinism, FullCheckIncludingTieBreakPerturbation)
{
    DeterminismReport report =
        DeterminismHarness::check(klebScenario);
    EXPECT_TRUE(report.deterministic) << report.summary();
    // The machine's results must not depend on FIFO order between
    // same-tick same-priority events: distinct priorities are
    // assigned wherever ordering matters.
    EXPECT_FALSE(report.tieBreakSensitive) << report.summary();
}

TEST(Determinism, DetectsInjectedNondeterminism)
{
    // A scenario with run-to-run state leakage: the second run
    // schedules a differently-named event, as wall-clock or global
    // RNG leakage would.
    static int invocation = 0;
    auto leaky = [](std::uint64_t tie_salt) {
        Observation obs;
        sim::EventQueue eq;
        eq.setTieBreakSalt(tie_salt);
        EventTrace trace;
        eq.addListener(&trace);
        std::string name =
            invocation++ == 0 ? "stable" : "leaked";
        eq.scheduleLambda(10, [] {},
                          sim::Event::defaultPriority, name);
        eq.runAll();
        eq.removeListener(&trace);
        obs.trace = trace;
        obs.counters.emplace_back("processed",
                                  eq.eventsProcessed());
        return obs;
    };

    invocation = 0;
    DeterminismReport report =
        DeterminismHarness::checkReplay(leaky);
    EXPECT_FALSE(report.deterministic);
    ASSERT_TRUE(report.divergence.has_value());
    EXPECT_EQ(report.divergence->index, 0u);
    EXPECT_NE(report.divergence->expected.find("stable"),
              std::string::npos);
    EXPECT_NE(report.divergence->actual.find("leaked"),
              std::string::npos);
    EXPECT_NE(report.summary().find("deterministic: NO"),
              std::string::npos);
}

TEST(Determinism, DetectsCounterMismatch)
{
    static int invocation = 0;
    auto drift = [](std::uint64_t) {
        Observation obs;
        obs.counters.emplace_back(
            "value", invocation++ == 0 ? 41u : 42u);
        return obs;
    };

    invocation = 0;
    DeterminismReport report =
        DeterminismHarness::checkReplay(drift);
    EXPECT_FALSE(report.deterministic);
    ASSERT_EQ(report.counterMismatches.size(), 1u);
    EXPECT_NE(report.counterMismatches[0].find("value"),
              std::string::npos);
}

TEST(Determinism, TieBreakSaltIsDeterministicPerSalt)
{
    auto run = [](std::uint64_t salt) {
        sim::EventQueue eq;
        eq.setTieBreakSalt(salt);
        std::vector<int> order;
        for (int i = 0; i < 8; ++i)
            eq.scheduleLambda(10, [&order, i] {
                order.push_back(i);
            });
        eq.runAll();
        return order;
    };

    // Salt 0 is the FIFO specification order.
    std::vector<int> fifo = run(0);
    EXPECT_EQ(fifo, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));

    // A fixed non-zero salt replays identically...
    std::vector<int> p1 = run(DeterminismHarness::perturbSalt);
    std::vector<int> p2 = run(DeterminismHarness::perturbSalt);
    EXPECT_EQ(p1, p2);

    // ...and actually perturbs the tie-break order.
    EXPECT_NE(p1, fifo);

    // It is a permutation, not a loss, of the same events.
    std::vector<int> sorted = p1;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, fifo);
}
