#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/lint.hh"

using namespace klebsim;
using analysis::Linter;
using analysis::LintViolation;

namespace
{

std::vector<std::string>
ruleIds(const std::vector<LintViolation> &vs)
{
    std::vector<std::string> ids;
    for (const auto &v : vs)
        ids.push_back(v.rule);
    return ids;
}

bool
flagged(const std::vector<LintViolation> &vs, const std::string &rule)
{
    for (const auto &v : vs)
        if (v.rule == rule)
            return true;
    return false;
}

} // namespace

TEST(Lint, FlagsWallClockApis)
{
    Linter linter;
    auto vs = linter.scanSource(
        "src/sim/foo.cc",
        "#include <chrono>\n"
        "auto t = std::chrono::system_clock::now();\n");
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "wall-clock");
    EXPECT_EQ(vs[0].line, 2u);

    vs = linter.scanSource("src/hw/foo.cc",
                           "long t = time(nullptr);\n");
    EXPECT_TRUE(flagged(vs, "wall-clock"));

    vs = linter.scanSource("src/hw/foo.cc",
                           "gettimeofday(&tv, nullptr);\n");
    EXPECT_TRUE(flagged(vs, "wall-clock"));
}

TEST(Lint, SimulatedTimeIsNotFlagged)
{
    Linter linter;
    auto vs = linter.scanSource(
        "src/sim/foo.cc",
        "Tick t = eq.curTick();\n"
        "Tick l = proc.lifetime();\n" // contains "time(" unanchored
        "double ms = ticksToMs(t);\n");
    EXPECT_TRUE(vs.empty()) << vs[0].str();
}

TEST(Lint, CommentsAndStringsAreIgnored)
{
    Linter linter;
    auto vs = linter.scanSource(
        "src/sim/foo.cc",
        "// rand() and time(nullptr) discussed here\n"
        "/* std::chrono::system_clock too */\n"
        "const char *label = \"Run time (ms)\";\n"
        "int x = 0; // trailing time( comment\n");
    EXPECT_TRUE(vs.empty()) << vs[0].str();
}

TEST(Lint, FlagsRawRandomness)
{
    Linter linter;
    auto vs = linter.scanSource("src/hw/foo.cc",
                                "int r = rand() % 6;\n");
    EXPECT_TRUE(flagged(vs, "raw-random"));

    vs = linter.scanSource("src/hw/foo.cc",
                           "std::random_device rd;\n");
    EXPECT_TRUE(flagged(vs, "raw-random"));

    // base/random itself is the canonical carve-out.
    vs = linter.scanSource("src/base/random.cc",
                           "std::random_device rd;\n");
    EXPECT_FALSE(flagged(vs, "raw-random"));
}

TEST(Lint, FlagsRawEventAllocation)
{
    Linter linter;
    auto vs = linter.scanSource(
        "src/kernel/foo.cc",
        "auto *ev = new EventFunctionWrapper(fn, \"x\");\n");
    EXPECT_TRUE(flagged(vs, "event-new"));

    vs = linter.scanSource(
        "src/sim/event_queue.cc",
        "auto *ev = new EventFunctionWrapper(fn, \"x\");\n");
    EXPECT_FALSE(flagged(vs, "event-new"));
}

TEST(Lint, FlagsRawThreadConstruction)
{
    Linter linter;
    auto vs = linter.scanSource(
        "src/kernel/foo.cc",
        "std::thread worker([] { run(); });\n");
    EXPECT_TRUE(flagged(vs, "raw-thread"));

    vs = linter.scanSource("bench/foo.cc",
                           "std::jthread t(fn);\n");
    EXPECT_TRUE(flagged(vs, "raw-thread"));

    vs = linter.scanSource(
        "src/hw/foo.cc",
        "std::vector<std::thread> workers;\n");
    EXPECT_TRUE(flagged(vs, "raw-thread"));

    // Querying host parallelism is fine — only construction is
    // banned.
    vs = linter.scanSource(
        "src/hw/foo.cc",
        "unsigned n = std::thread::hardware_concurrency();\n");
    EXPECT_FALSE(flagged(vs, "raw-thread"));

    // The pool implementation is the canonical carve-out.
    vs = linter.scanSource(
        "src/bench_support/trial_pool.cc",
        "std::vector<std::thread> threads;\n");
    EXPECT_FALSE(flagged(vs, "raw-thread"));
}

TEST(Lint, HotStdFunctionRuleAppliesToSubstrateOnly)
{
    Linter linter;
    auto vs = linter.scanSource(
        "src/sim/foo.hh",
        "std::function<void()> cb_;\n");
    EXPECT_TRUE(flagged(vs, "hot-std-function"));

    vs = linter.scanSource(
        "src/hw/foo.cc",
        "void arm(std::function <void()> cb);\n");
    EXPECT_TRUE(flagged(vs, "hot-std-function"));

    // Cold layers (kernel orchestration, stats, tools) may keep
    // std::function.
    vs = linter.scanSource(
        "src/kernel/foo.cc",
        "std::function<void()> onExit_;\n");
    EXPECT_FALSE(flagged(vs, "hot-std-function"));
    vs = linter.scanSource(
        "src/stats/foo.hh",
        "std::function<double()> probe_;\n");
    EXPECT_FALSE(flagged(vs, "hot-std-function"));

    // Comments and strings don't count (the InlineCallable header
    // itself explains what it replaces).
    vs = linter.scanSource(
        "src/sim/foo.cc",
        "// drop-in for std::function<void()>\n"
        "const char *s = \"std::function<void()>\";\n");
    EXPECT_TRUE(vs.empty()) << vs[0].str();

    // Allowlisted cold hooks are exempt.
    Linter allowed;
    allowed.allow("hot-std-function", "src/hw/pmu.hh");
    vs = allowed.scanSource("src/hw/pmu.hh",
                            "std::function<void()> hook_;\n");
    EXPECT_FALSE(flagged(vs, "hot-std-function"));
}

TEST(Lint, HotStdFunctionCleanOnRealTree)
{
    // The substrate itself must pass its own rule (modulo the
    // shipped allowlist's justified carve-outs) — this is what the
    // `lint.sources` tier-1 test enforces repo-wide.
    namespace fs = std::filesystem;
    if (!fs::exists(fs::path("tools") / "lint_allowlist.txt"))
        GTEST_SKIP() << "run from the repo root to check the tree";
    Linter linter;
    std::string err;
    ASSERT_TRUE(linter.loadAllowlist("tools/lint_allowlist.txt",
                                     &err))
        << err;
    for (const auto &v : linter.scanTree("."))
        EXPECT_NE(v.rule, "hot-std-function") << v.str();
}

TEST(Lint, PrintfRuleAppliesToSrcOnly)
{
    Linter linter;
    auto vs = linter.scanSource("src/stats/foo.cc",
                                "printf(\"%d\\n\", x);\n");
    EXPECT_TRUE(flagged(vs, "printf-family"));

    // Bench executables legitimately print tables.
    vs = linter.scanSource("bench/foo.cc",
                          "printf(\"%d\\n\", x);\n");
    EXPECT_FALSE(flagged(vs, "printf-family"));

    // csprintf (base/str) must not look like sprintf.
    vs = linter.scanSource("src/stats/foo.cc",
                          "out += csprintf(\"%d\", x);\n");
    EXPECT_FALSE(flagged(vs, "printf-family"));

    // The logging backend is the carve-out.
    vs = linter.scanSource("src/base/logging.cc",
                          "std::fprintf(stderr, \"x\");\n");
    EXPECT_FALSE(flagged(vs, "printf-family"));
}

TEST(Lint, ExpectedGuardNames)
{
    EXPECT_EQ(Linter::expectedGuard("src/sim/event_queue.hh"),
              "KLEBSIM_SIM_EVENT_QUEUE_HH");
    EXPECT_EQ(Linter::expectedGuard("bench/bench_util.hh"),
              "KLEBSIM_BENCH_BENCH_UTIL_HH");
    EXPECT_EQ(Linter::expectedGuard("src/analysis/lint.hh"),
              "KLEBSIM_ANALYSIS_LINT_HH");
}

TEST(Lint, FlagsMissingOrWrongIncludeGuard)
{
    Linter linter;

    auto vs = linter.scanSource("src/hw/foo.hh",
                                "#pragma once\nint x;\n");
    ASSERT_TRUE(flagged(vs, "include-guard"));

    vs = linter.scanSource("src/hw/foo.hh",
                           "#ifndef WRONG_NAME_HH\n"
                           "#define WRONG_NAME_HH\n"
                           "#endif\n");
    ASSERT_TRUE(flagged(vs, "include-guard"));

    vs = linter.scanSource("src/hw/foo.hh",
                           "#ifndef KLEBSIM_HW_FOO_HH\n"
                           "#define KLEBSIM_HW_FOO_HH\n"
                           "#endif // KLEBSIM_HW_FOO_HH\n");
    EXPECT_FALSE(flagged(vs, "include-guard"));

    // Mismatched #define under a correct #ifndef.
    vs = linter.scanSource("src/hw/foo.hh",
                           "#ifndef KLEBSIM_HW_FOO_HH\n"
                           "#define KLEBSIM_HW_BAR_HH\n"
                           "#endif\n");
    EXPECT_TRUE(flagged(vs, "include-guard"));

    // A leading doc comment before the guard is fine.
    vs = linter.scanSource("src/hw/foo.hh",
                           "/**\n"
                           " * @file doc\n"
                           " */\n"
                           "\n"
                           "#ifndef KLEBSIM_HW_FOO_HH\n"
                           "#define KLEBSIM_HW_FOO_HH\n"
                           "#endif\n");
    EXPECT_FALSE(flagged(vs, "include-guard"));

    // .cc files have no guard requirement.
    vs = linter.scanSource("src/hw/foo.cc", "int x;\n");
    EXPECT_FALSE(flagged(vs, "include-guard"));
}

TEST(Lint, AllowlistSuppressesByRuleAndPrefix)
{
    Linter linter;
    linter.allow("wall-clock", "src/legacy/");
    auto vs = linter.scanSource("src/legacy/old.cc",
                                "gettimeofday(&tv, nullptr);\n");
    EXPECT_FALSE(flagged(vs, "wall-clock"));

    // Only the named rule is exempt.
    vs = linter.scanSource("src/legacy/old.cc", "int r = rand();\n");
    EXPECT_TRUE(flagged(vs, "raw-random"));

    // Other paths stay covered.
    vs = linter.scanSource("src/hw/new.cc",
                          "gettimeofday(&tv, nullptr);\n");
    EXPECT_TRUE(flagged(vs, "wall-clock"));
}

TEST(Lint, AllowlistFileParsing)
{
    namespace fs = std::filesystem;
    fs::path dir = fs::path(testing::TempDir()) / "lint_allow";
    fs::create_directories(dir);
    fs::path file = dir / "allow.txt";
    {
        std::ofstream out(file);
        out << "# comment line\n"
            << "\n"
            << "wall-clock src/legacy/  # trailing comment\n";
    }

    Linter linter;
    std::string error;
    ASSERT_TRUE(linter.loadAllowlist(file.string(), &error))
        << error;
    EXPECT_TRUE(linter.allowed("wall-clock", "src/legacy/old.cc"));
    EXPECT_FALSE(linter.allowed("wall-clock", "src/hw/x.cc"));

    {
        std::ofstream out(file);
        out << "wall-clock\n"; // missing prefix
    }
    Linter strict;
    EXPECT_FALSE(strict.loadAllowlist(file.string(), &error));
    EXPECT_FALSE(error.empty());

    EXPECT_FALSE(Linter().loadAllowlist(
        (dir / "missing.txt").string(), &error));
}

TEST(Lint, ScanTreeFindsInjectedViolation)
{
    namespace fs = std::filesystem;
    fs::path root = fs::path(testing::TempDir()) / "lint_tree";
    fs::remove_all(root);
    fs::create_directories(root / "src" / "sim");
    fs::create_directories(root / "bench");
    {
        std::ofstream out(root / "src" / "sim" / "clean.cc");
        out << "int x = 1;\n";
    }
    {
        std::ofstream out(root / "src" / "sim" / "dirty.cc");
        out << "#include <chrono>\n"
            << "auto t = std::chrono::system_clock::now();\n";
    }
    {
        // Headers get the guard check.
        std::ofstream out(root / "src" / "sim" / "bad_guard.hh");
        out << "#ifndef WRONG\n#define WRONG\n#endif\n";
    }

    Linter linter;
    auto vs = linter.scanTree(root.string());
    ASSERT_EQ(vs.size(), 2u);
    // scanTree sorts files, so order is stable.
    EXPECT_EQ(vs[0].rule, "include-guard");
    EXPECT_EQ(vs[0].file, "src/sim/bad_guard.hh");
    EXPECT_EQ(vs[1].rule, "wall-clock");
    EXPECT_EQ(vs[1].file, "src/sim/dirty.cc");
    EXPECT_EQ(vs[1].line, 2u);

    EXPECT_EQ(ruleIds(linter.scanTree(
                  (root / "nonexistent").string()))
                  .size(),
              0u);
}

TEST(Lint, FaultHookCoverageFlagsUnwiredPoint)
{
    Linter linter;
    const std::string def =
        "KLEB_FAULT_POINT(timerMiss, \"timer.miss\")\n"
        "KLEB_FAULT_POINT(ioctlFail, \"ioctl.fail\")\n";
    std::vector<std::pair<std::string, std::string>> sources = {
        {"src/fault/fault_injector.cc",
         "if (p < 1.0) inject(FaultPoint::timerMiss);\n"}};

    auto vs = linter.checkFaultHookCoverage(
        "src/fault/fault_points.def", def, sources);
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "fault-hook-coverage");
    EXPECT_EQ(vs[0].line, 2u);
    EXPECT_NE(vs[0].message.find("ioctlFail"), std::string::npos);

    // Wiring the second point clears the report.
    sources[0].second += "stream(FaultPoint::ioctlFail).draw();\n";
    EXPECT_TRUE(linter
                    .checkFaultHookCoverage(
                        "src/fault/fault_points.def", def, sources)
                    .empty());
}

TEST(Lint, FaultHookCoverageIgnoresRegistryAndComments)
{
    Linter linter;
    // The table's own doc comment shows the macro form; that must
    // not be parsed as an entry.
    const std::string def =
        "// Columns: KLEB_FAULT_POINT(enumerator, \"spec-key\")\n"
        "KLEB_FAULT_POINT(readerStall, \"reader.stall\")\n";

    // References inside the registry files themselves don't count
    // as wiring (the plan/table always name every point).
    std::vector<std::pair<std::string, std::string>> registry_only =
        {{"src/fault/fault_plan.cc",
          "case FaultPoint::readerStall: break;\n"},
         {"src/fault/fault_points.def", "FaultPoint::readerStall\n"},
         // A prefix match ("FaultPoint::readerStallX") is not a
         // reference either.
         {"src/fault/fault_injector.cc",
          "use(FaultPoint::readerStallExtra);\n"}};
    auto vs = linter.checkFaultHookCoverage(
        "src/fault/fault_points.def", def, registry_only);
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_NE(vs[0].message.find("readerStall"), std::string::npos);
}

TEST(Lint, FaultHookCoverageRespectsAllowlist)
{
    Linter linter;
    linter.allow("fault-hook-coverage", "src/fault/");
    const std::string def =
        "KLEB_FAULT_POINT(targetCrash, \"target.crash\")\n";
    EXPECT_TRUE(linter
                    .checkFaultHookCoverage(
                        "src/fault/fault_points.def", def, {})
                    .empty());
}

TEST(Lint, FaultHookCoverageCleanOnRealTree)
{
    // The shipped registry must be fully wired (this is the check
    // the `lint.sources` tier-1 test runs over the repo).
    namespace fs = std::filesystem;
    fs::path def = fs::path("src") / "fault" / "fault_points.def";
    if (!fs::exists(def))
        GTEST_SKIP() << "run from the repo root to check the tree";
    Linter linter;
    for (const auto &v : linter.scanTree("."))
        EXPECT_NE(v.rule, "fault-hook-coverage") << v.str();
}

TEST(Lint, HeartbeatCoverageFlagsUntestedCrashFault)
{
    Linter linter;
    const std::string def =
        "KLEB_FAULT_POINT(controllerCrash, \"controller.crash\")\n"
        "KLEB_FAULT_POINT(logTornTail, \"log.torn_tail\")\n";

    // No chaos test mentions either key: two coverage holes.
    auto vs = linter.checkHeartbeatCoverage(
        "src/fault/fault_points.def", def, {});
    ASSERT_EQ(vs.size(), 2u);
    EXPECT_EQ(vs[0].rule, "heartbeat-coverage");
    EXPECT_EQ(vs[0].line, 1u);
    EXPECT_NE(vs[0].message.find("controller.crash"),
              std::string::npos);
    EXPECT_NE(vs[1].message.find("log.torn_tail"),
              std::string::npos);

    // A test injecting one key clears exactly that entry.
    std::vector<std::pair<std::string, std::string>> tests = {
        {"tests/fault/test_recovery_chaos.cc",
         "runSupervised(\"controller.crash=8ms\", 1);\n"}};
    vs = linter.checkHeartbeatCoverage(
        "src/fault/fault_points.def", def, tests);
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_NE(vs[0].message.find("log.torn_tail"),
              std::string::npos);
}

TEST(Lint, HeartbeatCoverageOnlySupervisedPrefixes)
{
    Linter linter;
    // Non-supervised keys (timer.*, ioctl.*, ...) are the
    // fault-hook-coverage rule's business, not this one's; the doc
    // comment's macro form is not an entry either.
    const std::string def =
        "// Columns: KLEB_FAULT_POINT(enumerator, \"spec-key\")\n"
        "KLEB_FAULT_POINT(timerMiss, \"timer.miss\")\n"
        "KLEB_FAULT_POINT(ioctlFail, \"ioctl.fail\")\n";
    EXPECT_TRUE(linter
                    .checkHeartbeatCoverage(
                        "src/fault/fault_points.def", def, {})
                    .empty());
}

TEST(Lint, HeartbeatCoverageCleanOnRealTree)
{
    // Every controller.* / log.* fault point shipped must be
    // injected by at least one chaos test (part of `lint.sources`).
    namespace fs = std::filesystem;
    fs::path def = fs::path("src") / "fault" / "fault_points.def";
    if (!fs::exists(def))
        GTEST_SKIP() << "run from the repo root to check the tree";
    Linter linter;
    for (const auto &v : linter.scanTree("."))
        EXPECT_NE(v.rule, "heartbeat-coverage") << v.str();
}

TEST(Lint, AllowlistDanglingEntryFlagged)
{
    Linter linter;
    std::string err;
    ASSERT_TRUE(linter.loadAllowlistFromString(
        "# carve-outs\n"
        "wall-clock src/gone/legacy.cc\n"
        "printf-family src/tools/report.cc\n",
        "tools/lint_allowlist.txt", &err))
        << err;

    // Only report.cc still exists: the legacy carve-out dangles,
    // and the violation points at the allowlist file and line.
    auto vs = linter.checkAllowlistEntries(
        {"src/tools/report.cc", "src/kleb/session.cc"});
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "allowlist-dangling");
    EXPECT_EQ(vs[0].file, "tools/lint_allowlist.txt");
    EXPECT_EQ(vs[0].line, 2u);
    EXPECT_NE(vs[0].text.find("src/gone/legacy.cc"),
              std::string::npos);

    // Prefix semantics: a directory prefix matching any file is
    // alive, and programmatic allow() entries are never checked.
    Linter dir_linter;
    ASSERT_TRUE(dir_linter.loadAllowlistFromString(
        "raw-random src/hw/\n", "allow.txt", &err))
        << err;
    dir_linter.allow("wall-clock", "src/never/checked.cc");
    EXPECT_TRUE(dir_linter
                    .checkAllowlistEntries({"src/hw/pmu.cc"})
                    .empty());
    EXPECT_EQ(dir_linter.checkAllowlistEntries({"src/kleb/a.cc"})
                  .size(),
              1u);
}

TEST(Lint, AllowlistCleanOnRealTree)
{
    // The shipped allowlist must not carry carve-outs for files
    // that no longer exist.
    namespace fs = std::filesystem;
    if (!fs::exists(fs::path("tools") / "lint_allowlist.txt"))
        GTEST_SKIP() << "run from the repo root to check the tree";
    Linter linter;
    std::string err;
    ASSERT_TRUE(linter.loadAllowlist("tools/lint_allowlist.txt",
                                     &err))
        << err;
    for (const auto &v : linter.scanTree("."))
        EXPECT_NE(v.rule, "allowlist-dangling") << v.str();
}

TEST(Lint, FlagsBareMutexLocking)
{
    Linter linter;
    auto vs = linter.scanSource(
        "src/kleb/foo.cc",
        "void f(std::mutex &m, std::mutex *p)\n"
        "{\n"
        "    m.lock();\n"
        "    p->unlock();\n"
        "}\n");
    ASSERT_EQ(vs.size(), 2u);
    EXPECT_EQ(vs[0].rule, "mutex-raii");
    EXPECT_EQ(vs[0].line, 3u);
    EXPECT_EQ(vs[1].line, 4u);

    // RAII holders and lookalike identifiers stay legal.
    vs = linter.scanSource(
        "src/kleb/foo.cc",
        "void g(std::mutex &m)\n"
        "{\n"
        "    std::lock_guard<std::mutex> hold(m);\n"
        "    int lock = relock(unlock_count);\n"
        "}\n");
    EXPECT_TRUE(vs.empty());

    // base/thread_safety's own implementation is carved out.
    vs = linter.scanSource("src/base/thread_safety.hh",
                           "#ifndef KLEBSIM_BASE_THREAD_SAFETY_HH\n"
                           "#define KLEBSIM_BASE_THREAD_SAFETY_HH\n"
                           "void lock() { m_.lock(); }\n"
                           "#endif"
                           " // KLEBSIM_BASE_THREAD_SAFETY_HH\n");
    EXPECT_FALSE(flagged(vs, "mutex-raii"));
}

TEST(Lint, FlagsAllocationInHotFunctions)
{
    Linter linter;
    auto vs = linter.scanSource(
        "src/sim/foo.cc",
        "KLEB_HOT void f(std::vector<int> &v)\n"
        "{\n"
        "    v.push_back(1);\n"
        "    auto p = std::make_unique<int>(2);\n"
        "    int *q = new int(3);\n"
        "}\n");
    ASSERT_EQ(vs.size(), 3u);
    for (const auto &v : vs)
        EXPECT_EQ(v.rule, "hot-alloc");

    // The same body without the marker is legal.
    vs = linter.scanSource(
        "src/sim/foo.cc",
        "void f(std::vector<int> &v)\n"
        "{\n"
        "    v.push_back(1);\n"
        "    int *q = new int(3);\n"
        "}\n");
    EXPECT_TRUE(vs.empty());

    // A KLEB_HOT declaration (no body) must not arm the scope.
    vs = linter.scanSource(
        "src/sim/foo.cc",
        "KLEB_HOT void f(std::vector<int> &v);\n"
        "void g(std::vector<int> &v) { v.reserve(4); }\n");
    EXPECT_TRUE(vs.empty());
}

TEST(Lint, FlagsDetachedThreads)
{
    Linter linter;
    auto vs = linter.scanSource("src/kleb/foo.cc",
                                "void f(std::thread *t)\n"
                                "{\n"
                                "    t->detach();\n"
                                "}\n");
    EXPECT_TRUE(flagged(vs, "detached-thread"));

    // detach as a plain identifier is not a detach call.
    vs = linter.scanSource("src/kleb/foo.cc",
                           "int detach = 0; use(detach);\n");
    EXPECT_FALSE(flagged(vs, "detached-thread"));
}

TEST(Lint, BannedSpellingsInLiteralsAndCommentsStayLegal)
{
    Linter linter;
    auto vs = linter.scanSource(
        "src/kleb/foo.cc",
        "// gate.lock() and t.detach() in a comment\n"
        "const char *s = \"m.lock() rand() new int\";\n"
        "const char *r = R\"(v.push_back(1) t.detach())\";\n");
    EXPECT_TRUE(vs.empty());
}

TEST(Lint, KnownRuleCoversPatternTokenAndBuiltinRules)
{
    Linter linter;
    EXPECT_TRUE(linter.knownRule("wall-clock"));
    EXPECT_TRUE(linter.knownRule("mutex-raii"));
    EXPECT_TRUE(linter.knownRule("include-guard"));
    EXPECT_TRUE(linter.knownRule("fault-hook-coverage"));
    EXPECT_TRUE(linter.knownRule("heartbeat-coverage"));
    EXPECT_TRUE(linter.knownRule("allowlist-dangling"));
    EXPECT_FALSE(linter.knownRule("phase-of-moon"));

    linter.addRule({"custom-ban", "forbidden", "message", {"src"}});
    EXPECT_TRUE(linter.knownRule("custom-ban"));
}

TEST(Lint, AllowlistEntryWithUnknownRuleFlagged)
{
    Linter linter;
    std::string err;
    ASSERT_TRUE(linter.loadAllowlistFromString(
        "wall-clock src/kleb/a.cc\n"
        "phase-of-moon src/kleb/a.cc\n",
        "tools/lint_allowlist.txt", &err))
        << err;

    // The path exists in both entries; only the retired rule id
    // dangles, and the message names it.
    auto vs = linter.checkAllowlistEntries({"src/kleb/a.cc"});
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "allowlist-dangling");
    EXPECT_EQ(vs[0].line, 2u);
    EXPECT_NE(vs[0].message.find("phase-of-moon"),
              std::string::npos);
}

TEST(Lint, FaultHookCoverageFlagsDuplicateEnumerator)
{
    Linter linter;
    const std::string def =
        "KLEB_FAULT_POINT(timerMiss, \"timer.miss\")\n"
        "KLEB_FAULT_POINT(timerMiss, \"timer.late\")\n";
    std::vector<std::pair<std::string, std::string>> sources = {
        {"src/fault/fault_injector.cc",
         "inject(FaultPoint::timerMiss);\n"}};

    auto vs = linter.checkFaultHookCoverage(
        "src/fault/fault_points.def", def, sources);
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].rule, "fault-hook-coverage");
    EXPECT_EQ(vs[0].line, 2u);
    EXPECT_NE(vs[0].message.find("timerMiss"), std::string::npos);
    EXPECT_NE(vs[0].message.find("registered twice"),
              std::string::npos);
    EXPECT_NE(vs[0].message.find("line 1"), std::string::npos);
}

TEST(Lint, FaultHookCoverageFlagsDuplicateSpecKey)
{
    Linter linter;
    // Distinct enumerators, same spec key: the parser would route
    // both to whichever branch matches first, silently shadowing
    // the other point.
    const std::string def =
        "KLEB_FAULT_POINT(timerMiss, \"timer.miss\")\n"
        "KLEB_FAULT_POINT(timerSkip, \"timer.miss\")\n";
    std::vector<std::pair<std::string, std::string>> sources = {
        {"src/fault/fault_injector.cc",
         "inject(FaultPoint::timerMiss);\n"
         "inject(FaultPoint::timerSkip);\n"}};

    auto vs = linter.checkFaultHookCoverage(
        "src/fault/fault_points.def", def, sources);
    ASSERT_EQ(vs.size(), 1u);
    EXPECT_EQ(vs[0].line, 2u);
    EXPECT_NE(vs[0].message.find("timer.miss"), std::string::npos);
    EXPECT_NE(vs[0].message.find("registered twice"),
              std::string::npos);

    // Unique keys stay clean.
    const std::string ok =
        "KLEB_FAULT_POINT(timerMiss, \"timer.miss\")\n"
        "KLEB_FAULT_POINT(timerSkip, \"timer.skip\")\n";
    EXPECT_TRUE(linter
                    .checkFaultHookCoverage(
                        "src/fault/fault_points.def", ok, sources)
                    .empty());
}
