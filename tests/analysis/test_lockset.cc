/**
 * @file
 * Tests for the Eraser-style runtime lockset checker.
 *
 * The deliberately-racy cases violate *lock discipline* on data that
 * is physically std::atomic — the checker must fire (no consistent
 * lock guards the location) while ThreadSanitizer stays silent (no
 * actual data race), so the lockset-chaos CI job can run these under
 * TSan with halt_on_error=1.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "analysis/lockset.hh"
#include "base/thread_safety.hh"

namespace
{

using klebsim::setThreadSafetySink;
using klebsim::threadSafetySink;
using klebsim::TrackedLock;
using klebsim::TrackedMutex;
using klebsim::analysis::LocksetChecker;
using klebsim::analysis::ScopedLockset;

/** Run @p fn on @p n fresh threads and join them all. */
template <typename Fn>
void
onThreads(unsigned n, Fn fn)
{
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads.emplace_back(fn);
    for (std::thread &t : threads)
        t.join();
}

TEST(Lockset, SeededRaceIsCaught)
{
    ScopedLockset scoped;
    std::atomic<std::uint64_t> counter{0};

    // Two threads hammer the same location holding no lock at all:
    // the classic discipline violation the checker exists for.
    onThreads(2, [&] {
        for (int i = 0; i < 100; ++i) {
            KLEB_ANNOTATE_ACCESS(&counter, "test.racy.counter");
            counter.fetch_add(1, std::memory_order_relaxed);
        }
    });

    auto reports = scoped->reports();
    ASSERT_EQ(reports.size(), 1u) << "one report per location";
    EXPECT_EQ(reports[0].addr, &counter);
    EXPECT_EQ(reports[0].site, "test.racy.counter");
    EXPECT_TRUE(reports[0].write);
    EXPECT_GE(scoped->accessesObserved(), 200u);
}

TEST(Lockset, InconsistentLocksAreCaught)
{
    ScopedLockset scoped;
    TrackedMutex a("test.mutex.a");
    TrackedMutex b("test.mutex.b");
    std::atomic<int> shared{0};

    // Each thread *does* hold a lock — just never the same one, so
    // the candidate lockset intersects to empty.  The ping-pong turn
    // counter forces strict alternation: the lockset only refines on
    // each access, so if one thread ran to completion before the
    // other started, the survivor's lone lock would never be
    // intersected away and the checker would (correctly, per Eraser)
    // stay silent.
    std::atomic<int> seq{0};
    std::atomic<int> turn{0};
    onThreads(2, [&] {
        const int me = seq.fetch_add(1);
        for (int i = 0; i < 8; ++i) {
            while (turn.load(std::memory_order_acquire) % 2 != me)
                std::this_thread::yield();
            {
                TrackedLock hold(me == 0 ? a : b);
                KLEB_ANNOTATE_ACCESS(&shared,
                                     "test.mismatched.locks");
                shared.store(i, std::memory_order_relaxed);
            }
            turn.fetch_add(1, std::memory_order_release);
        }
    });

    ASSERT_EQ(scoped->reports().size(), 1u);
    EXPECT_EQ(scoped->reports()[0].site, "test.mismatched.locks");
}

TEST(Lockset, ConsistentLockingIsClean)
{
    ScopedLockset scoped;
    TrackedMutex m("test.mutex.shared");
    std::uint64_t value = 0; // genuinely guarded: plain data is fine

    onThreads(4, [&] {
        for (int i = 0; i < 50; ++i) {
            TrackedLock hold(m);
            KLEB_ANNOTATE_ACCESS(&value, "test.guarded.value");
            ++value;
        }
    });

    EXPECT_TRUE(scoped->reports().empty());
    EXPECT_EQ(value, 200u);
    EXPECT_GE(scoped->accessesObserved(), 200u);
}

TEST(Lockset, ExclusiveOwnerNeedsNoLocks)
{
    ScopedLockset scoped;
    int local = 0;
    // Initialization pattern: one thread, many unlocked writes.
    for (int i = 0; i < 100; ++i) {
        KLEB_ANNOTATE_ACCESS(&local, "test.exclusive");
        ++local;
    }
    EXPECT_TRUE(scoped->reports().empty());
}

TEST(Lockset, ReadSharedDataNeverReports)
{
    ScopedLockset scoped;
    const int table = 42;
    // Writer initializes, then many threads only read: the location
    // reaches the shared state but never shared-modified.
    KLEB_ANNOTATE_ACCESS(&table, "test.readonly");
    onThreads(3, [&] {
        for (int i = 0; i < 20; ++i)
            KLEB_ANNOTATE_READ(&table, "test.readonly");
    });
    EXPECT_TRUE(scoped->reports().empty());
}

TEST(Lockset, WriteAfterReadSharingIsCaught)
{
    ScopedLockset scoped;
    std::atomic<int> cell{0};
    KLEB_ANNOTATE_ACCESS(&cell, "test.read.then.write"); // owner
    std::thread reader([&] {
        KLEB_ANNOTATE_READ(&cell, "test.read.then.write");
    });
    reader.join();
    // Back on the first thread: the location is shared now, and an
    // unlocked write demotes it to shared-modified with an empty
    // lockset.
    KLEB_ANNOTATE_ACCESS(&cell, "test.read.then.write");
    ASSERT_EQ(scoped->reports().size(), 1u);
    EXPECT_TRUE(scoped->reports()[0].write);
}

TEST(Lockset, ForgetResetsALocationAtHandoff)
{
    ScopedLockset scoped;
    std::atomic<int> slot{0};
    std::thread producer([&] {
        KLEB_ANNOTATE_ACCESS(&slot, "test.handoff");
        slot.store(1, std::memory_order_release);
    });
    producer.join();
    // Fork/join hand-off: ownership moved via join, not a lock.
    // Without forget() the consumer write below would misfire.
    scoped->forget(&slot);
    KLEB_ANNOTATE_ACCESS(&slot, "test.handoff");
    EXPECT_TRUE(scoped->reports().empty());
}

TEST(Lockset, ResetClearsEverything)
{
    ScopedLockset scoped;
    std::atomic<int> x{0};
    onThreads(2, [&] {
        KLEB_ANNOTATE_ACCESS(&x, "test.reset");
    });
    EXPECT_FALSE(scoped->reports().empty());
    scoped->reset();
    EXPECT_TRUE(scoped->reports().empty());
    EXPECT_EQ(scoped->accessesObserved(), 0u);
}

TEST(Lockset, DisabledHooksCostNothingAndRecordNothing)
{
    ASSERT_EQ(threadSafetySink(), nullptr)
        << "a sink leaked from another test";
    // With no sink installed the macros are a null check: nothing
    // observable happens, and nothing crashes.
    int value = 0;
    KLEB_ANNOTATE_ACCESS(&value, "test.disabled");
    KLEB_ANNOTATE_READ(&value, "test.disabled");
    TrackedMutex m("test.disabled.mutex");
    {
        TrackedLock hold(m);
        ++value;
    }
    EXPECT_EQ(value, 1);

    // A checker that was never installed observes nothing.
    LocksetChecker idle;
    EXPECT_EQ(idle.accessesObserved(), 0u);
}

TEST(Lockset, UninstallOnlyRemovesItself)
{
    LocksetChecker first;
    first.install();
    LocksetChecker second;
    second.install(); // replaces first as the global sink
    first.uninstall();
    EXPECT_EQ(threadSafetySink(), &second)
        << "first's uninstall must not evict second";
    second.uninstall();
    EXPECT_EQ(threadSafetySink(), nullptr);
}

TEST(Lockset, TrackedMutexIdsAreUniqueAndNamed)
{
    TrackedMutex a("alpha");
    TrackedMutex b("beta");
    EXPECT_NE(a.id(), b.id());
    EXPECT_NE(a.id(), 0u);
    EXPECT_STREQ(a.name(), "alpha");
}

} // anonymous namespace
