#include <gtest/gtest.h>

#include <memory>

#include "analysis/invariants.hh"
#include "hw/msr.hh"
#include "hw/pmu.hh"
#include "kernel/system.hh"
#include "kleb/session.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using analysis::InvariantChecker;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

} // namespace

TEST(InvariantChecker, LegalTransitionTable)
{
    using PS = ProcState;
    auto ok = InvariantChecker::legalTransition;

    EXPECT_TRUE(ok(PS::created, PS::ready));
    EXPECT_TRUE(ok(PS::created, PS::zombie));
    EXPECT_TRUE(ok(PS::ready, PS::running));
    EXPECT_TRUE(ok(PS::running, PS::ready));
    EXPECT_TRUE(ok(PS::running, PS::sleeping));
    EXPECT_TRUE(ok(PS::running, PS::blocked));
    EXPECT_TRUE(ok(PS::running, PS::zombie));
    EXPECT_TRUE(ok(PS::sleeping, PS::ready));
    EXPECT_TRUE(ok(PS::blocked, PS::ready));
    EXPECT_TRUE(ok(PS::blocked, PS::zombie));

    EXPECT_FALSE(ok(PS::created, PS::running));
    EXPECT_FALSE(ok(PS::ready, PS::sleeping));
    EXPECT_FALSE(ok(PS::sleeping, PS::running));
    EXPECT_FALSE(ok(PS::blocked, PS::sleeping));
    EXPECT_FALSE(ok(PS::zombie, PS::ready));
    EXPECT_FALSE(ok(PS::zombie, PS::running));
}

TEST(InvariantChecker, CleanKlebSessionHasNoViolations)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    InvariantChecker checker;
    checker.attachQueue(sys.eq());
    checker.attachKernel(sys.kernel());
    checker.attachPmu(sys.core(0).pmu(), "core0-pmu");

    FixedWorkSource src = computeSource(10, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.period = 100_us;
    opts.idealTimer = true;
    {
        kleb::Session session(sys, opts);
        session.monitor(target);
        sys.run();
        EXPECT_TRUE(session.finished());
    }

    EXPECT_TRUE(checker.ok()) << checker.report();
    // The checker actually watched the machine: every schedule,
    // dispatch, state change and counter read was evaluated.
    EXPECT_GT(checker.checksPerformed(), 100u);
}

TEST(InvariantChecker, FlagsReadOfUnprogrammedCounter)
{
    hw::Pmu pmu;
    InvariantChecker checker;
    checker.attachPmu(pmu, "pmu");

    pmu.programCounter(0, hw::HwEvent::llcMiss);
    pmu.rdpmc(0); // programmed: fine
    EXPECT_TRUE(checker.ok()) << checker.report();

    pmu.rdpmc(2); // never programmed
    ASSERT_FALSE(checker.ok());
    EXPECT_NE(checker.report().find("unprogrammed"),
              std::string::npos);
}

TEST(InvariantChecker, FlagsReadOfUnprogrammedCounterViaMsr)
{
    hw::Pmu pmu;
    hw::MsrFile msrs;
    msrs.attach(&pmu);

    InvariantChecker checker;
    checker.attachPmu(pmu, "pmu");

    pmu.programFixed(0, true, false);
    msrs.read(hw::msr::ia32FixedCtr0); // programmed: fine
    EXPECT_TRUE(checker.ok());

    msrs.read(hw::msr::ia32FixedCtr0 + 2); // never programmed
    EXPECT_FALSE(checker.ok());
}

namespace
{

/** A module whose timer outlives it — the bug class the checker
 *  exists to catch. */
class LeakyModule : public KernelModule
{
  public:
    explicit LeakyModule(bool cancel_on_exit)
        : cancelOnExit_(cancel_on_exit)
    {
    }

    std::string name() const override { return "leaky"; }

    void
    init(Kernel &kernel) override
    {
        timer_ = kernel.createHrTimer(name() + "-timer", 0,
                                      [] {}, 0, 0);
        timer_->startPeriodic(100_us);
    }

    void
    exitModule(Kernel &kernel) override
    {
        (void)kernel;
        if (cancelOnExit_)
            timer_->cancel();
    }

  private:
    bool cancelOnExit_;
    kernel::HrTimer *timer_ = nullptr;
};

} // namespace

TEST(InvariantChecker, FlagsEventAfterModuleUnload)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    InvariantChecker checker;
    checker.attachQueue(sys.eq());
    checker.attachKernel(sys.kernel());

    sys.kernel().loadModule(
        std::make_unique<LeakyModule>(/*cancel_on_exit=*/false),
        "/dev/leaky");
    sys.run(1_ms);
    EXPECT_TRUE(checker.ok()) << checker.report();

    sys.kernel().unloadModule("/dev/leaky");
    sys.run(2_ms); // the orphaned timer keeps firing
    ASSERT_FALSE(checker.ok());
    EXPECT_NE(checker.report().find("after its owner"),
              std::string::npos);
}

TEST(InvariantChecker, WellBehavedModuleUnloadIsClean)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    InvariantChecker checker;
    checker.attachQueue(sys.eq());
    checker.attachKernel(sys.kernel());

    sys.kernel().loadModule(
        std::make_unique<LeakyModule>(/*cancel_on_exit=*/true),
        "/dev/leaky");
    sys.run(1_ms);
    sys.kernel().unloadModule("/dev/leaky");
    sys.run(2_ms);
    EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(InvariantChecker, QueueOrderingInvariantsHold)
{
    sim::EventQueue eq;
    InvariantChecker checker;
    checker.attachQueue(eq);

    for (int i = 0; i < 50; ++i)
        eq.scheduleLambda(static_cast<Tick>(10 * (i % 7)) + 10,
                          [] {});
    eq.runAll();
    EXPECT_TRUE(checker.ok()) << checker.report();
    // 50 schedule hooks + 50 dispatch hooks.
    EXPECT_EQ(checker.checksPerformed(), 100u);
}

TEST(InvariantChecker, ModuleReloadPairingIsClean)
{
    System sys(hw::MachineConfig::corei7_920(), 7, quietCosts());
    InvariantChecker checker;
    checker.attachKernel(sys.kernel());

    sys.kernel().loadModule(std::make_unique<kleb::KLebModule>(),
                            "/dev/pair");
    sys.kernel().unloadModule("/dev/pair");
    // A reload at the same path is legitimate and must also lift
    // the unloaded module's event ban.
    sys.kernel().loadModule(std::make_unique<kleb::KLebModule>(),
                            "/dev/pair");
    sys.kernel().unloadModule("/dev/pair");
    EXPECT_TRUE(checker.ok()) << checker.report();
    EXPECT_GE(checker.checksPerformed(), 4u);
}

TEST(InvariantChecker, SampleLogChecksCatchCorruption)
{
    InvariantChecker checker;

    auto sample = [](Tick ts, std::uint64_t count,
                     kleb::SampleCause cause =
                         kleb::SampleCause::timer) {
        kleb::Sample s;
        s.timestamp = ts;
        s.cause = cause;
        s.numEvents = 1;
        s.counts[0] = count;
        return s;
    };

    // A well-formed log passes.
    checker.checkSampleLog(
        {sample(100, 10), sample(200, 10),
         sample(300, 30, kleb::SampleCause::final)},
        "good");
    EXPECT_TRUE(checker.ok()) << checker.report();

    // Backwards timestamp.
    checker.checkSampleLog({sample(200, 10), sample(100, 20)},
                           "ts");
    EXPECT_EQ(checker.violations().size(), 1u);

    // Counter moving backwards = failed wrap correction.
    checker.checkSampleLog({sample(100, 50), sample(200, 40)},
                           "wrap");
    ASSERT_EQ(checker.violations().size(), 2u);
    EXPECT_NE(checker.violations()[1].find("wrap correction"),
              std::string::npos);

    // A `final` sample anywhere but last.
    checker.checkSampleLog(
        {sample(100, 10, kleb::SampleCause::final),
         sample(200, 20)},
        "early-final");
    EXPECT_EQ(checker.violations().size(), 3u);

    // Inconsistent event counts.
    kleb::Sample wide = sample(300, 30);
    wide.numEvents = 3;
    checker.checkSampleLog({sample(100, 10), wide}, "events");
    EXPECT_EQ(checker.violations().size(), 4u);
    EXPECT_FALSE(checker.ok());
}
