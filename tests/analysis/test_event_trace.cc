#include <gtest/gtest.h>

#include "analysis/event_trace.hh"
#include "sim/event_queue.hh"

using namespace klebsim;
using analysis::EventTrace;
using analysis::TraceRecord;
using sim::Event;
using sim::EventQueue;

namespace
{

/** Run a canned scenario and return its trace. */
EventTrace
runScenario(bool extra_event = false)
{
    EventQueue eq;
    EventTrace trace;
    eq.addListener(&trace);
    eq.scheduleLambda(10, [] {}, Event::defaultPriority, "a");
    eq.scheduleLambda(20, [] {}, Event::timerPriority, "b");
    if (extra_event)
        eq.scheduleLambda(15, [] {}, Event::defaultPriority, "c");
    eq.runAll();
    eq.removeListener(&trace);
    return trace;
}

} // namespace

TEST(EventTrace, RecordsScheduleAndDispatch)
{
    EventQueue eq;
    EventTrace trace;
    eq.addListener(&trace);

    Event *ev = eq.scheduleLambda(100, [] {},
                                  Event::defaultPriority, "tick");
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_EQ(trace.records()[0].kind, TraceRecord::Kind::schedule);
    EXPECT_EQ(trace.records()[0].when, 100u);
    EXPECT_EQ(trace.records()[0].name, "tick");

    eq.cancelLambda(ev);
    ASSERT_EQ(trace.size(), 2u);
    EXPECT_EQ(trace.records()[1].kind,
              TraceRecord::Kind::deschedule);

    eq.scheduleLambda(200, [] {}, Event::defaultPriority, "fire");
    eq.runAll();
    ASSERT_EQ(trace.size(), 4u);
    EXPECT_EQ(trace.records()[3].kind, TraceRecord::Kind::dispatch);
    EXPECT_EQ(trace.records()[3].at, 200u);

    eq.removeListener(&trace);
}

TEST(EventTrace, IdenticalRunsProduceIdenticalTraces)
{
    EventTrace a = runScenario();
    EventTrace b = runScenario();
    EXPECT_EQ(a.fingerprint(), b.fingerprint());
    EXPECT_EQ(EventTrace::firstDivergence(a, b), std::nullopt);
}

TEST(EventTrace, DivergenceIsPinpointed)
{
    EventTrace a = runScenario(false);
    EventTrace b = runScenario(true);
    EXPECT_NE(a.fingerprint(), b.fingerprint());
    auto div = EventTrace::firstDivergence(a, b);
    ASSERT_TRUE(div.has_value());
    // Both runs schedule "a" and "b" identically; run B then
    // schedules "c", so the split is at the third record.
    EXPECT_EQ(*div, 2u);
}

TEST(EventTrace, PrefixTraceDiverges)
{
    EventTrace a = runScenario();
    EventTrace b = runScenario();
    ASSERT_FALSE(EventTrace::firstDivergence(a, b).has_value());
    // Truncate b by rebuilding a shorter run: a prefix must count
    // as a divergence at the first missing record.
    EventTrace empty;
    auto div = EventTrace::firstDivergence(a, empty);
    ASSERT_TRUE(div.has_value());
    EXPECT_EQ(*div, 0u);
}

TEST(EventTrace, RecordRenderingIsStable)
{
    EventTrace a = runScenario();
    ASSERT_FALSE(a.empty());
    const TraceRecord &r = a.records().front();
    std::string s = r.str();
    EXPECT_NE(s.find("schedule"), std::string::npos);
    EXPECT_NE(s.find('a'), std::string::npos);
}
