#include <gtest/gtest.h>

#include <tuple>

#include "hw/cache.hh"

using namespace klebsim;
using namespace klebsim::hw;

namespace
{

/** (size, ways, policy) sweep. */
using CacheParam = std::tuple<std::uint64_t, std::uint32_t,
                              ReplPolicy>;

class CacheProperty
    : public ::testing::TestWithParam<CacheParam>
{
  protected:
    CacheGeometry
    geom() const
    {
        auto [size, ways, policy] = GetParam();
        return {size, ways, 64, policy};
    }
};

} // namespace

/** Property: an access to a just-accessed line always hits. */
TEST_P(CacheProperty, ImmediateReuseAlwaysHits)
{
    Cache c("p", geom(), Random(1));
    Random rng(77);
    for (int i = 0; i < 2000; ++i) {
        Addr a = rng.next64() % (1 << 26);
        c.access(a, rng.chance(0.3));
        EXPECT_TRUE(c.access(a, false)) << "addr " << a;
    }
}

/** Property: hits + misses == accesses, always. */
TEST_P(CacheProperty, StatsBalance)
{
    Cache c("p", geom(), Random(2));
    Random rng(78);
    for (int i = 0; i < 5000; ++i)
        c.access(rng.next64() % (1 << 24), rng.chance(0.5));
    EXPECT_EQ(c.stats().hits + c.stats().misses, 5000u);
    EXPECT_EQ(c.stats().accesses(), 5000u);
}

/** Property: resident lines never exceed the capacity in lines. */
TEST_P(CacheProperty, ResidencyBounded)
{
    Cache c("p", geom(), Random(3));
    Random rng(79);
    std::uint64_t capacity_lines = geom().sizeBytes / 64;
    for (int i = 0; i < 5000; ++i) {
        c.access(rng.next64() % (1 << 28), false);
        ASSERT_LE(c.residentLines(), capacity_lines);
    }
    // A long stream fills the cache completely.
    for (Addr a = 0; a < geom().sizeBytes * 4; a += 64)
        c.access(a, false);
    EXPECT_EQ(c.residentLines(), capacity_lines);
}

/** Property: evictions == misses - lines resident at the end. */
TEST_P(CacheProperty, EvictionAccounting)
{
    Cache c("p", geom(), Random(4));
    Random rng(80);
    for (int i = 0; i < 4000; ++i)
        c.access(rng.next64() % (1 << 26), false);
    EXPECT_EQ(c.stats().evictions,
              c.stats().misses - c.residentLines());
}

/** Property: a working set within one way-worth per set is stable. */
TEST_P(CacheProperty, SmallWorkingSetStable)
{
    Cache c("p", geom(), Random(5));
    // One line per set: footprint = sets * lineSize.
    std::uint64_t footprint = geom().sets() * 64;
    for (int round = 0; round < 4; ++round)
        for (Addr a = 0; a < footprint; a += 64)
            c.access(a, false);
    // After the cold round, everything hits.
    EXPECT_EQ(c.stats().misses, footprint / 64);
}

/** Property: flushAll leaves an empty cache that re-misses. */
TEST_P(CacheProperty, FlushAllResets)
{
    Cache c("p", geom(), Random(6));
    for (Addr a = 0; a < 4096; a += 64)
        c.access(a, false);
    c.flushAll();
    EXPECT_EQ(c.residentLines(), 0u);
    c.resetStats();
    for (Addr a = 0; a < 4096; a += 64)
        EXPECT_FALSE(c.access(a, false));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheProperty,
    ::testing::Values(
        CacheParam{4096, 1, ReplPolicy::lru},       // direct-mapped
        CacheParam{32768, 8, ReplPolicy::lru},      // L1-like
        CacheParam{262144, 8, ReplPolicy::lru},     // L2-like
        CacheParam{32768, 8, ReplPolicy::treePlru},
        CacheParam{32768, 8, ReplPolicy::random},
        CacheParam{49152, 12, ReplPolicy::lru},     // non-pow2 ways
        CacheParam{196608, 3, ReplPolicy::random}), // non-pow2 sets
    [](const ::testing::TestParamInfo<CacheParam> &info) {
        // Note: no structured bindings here — the unparenthesized
        // commas would split the INSTANTIATE macro's arguments.
        std::uint64_t size = std::get<0>(info.param);
        std::uint32_t ways = std::get<1>(info.param);
        ReplPolicy policy = std::get<2>(info.param);
        const char *pol =
            policy == ReplPolicy::lru
                ? "lru"
                : policy == ReplPolicy::random ? "rand" : "plru";
        return std::to_string(size / 1024) + "k_w" +
               std::to_string(ways) + "_" + pol;
    });
