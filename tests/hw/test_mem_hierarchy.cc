#include <gtest/gtest.h>

#include "hw/mem_hierarchy.hh"

using namespace klebsim;
using namespace klebsim::hw;

namespace
{

struct Fixture
{
    Fixture()
        : cfg(MachineConfig::corei7_920()),
          llc("LLC", cfg.llc, Random(2)),
          mem(cfg, &llc, Random(3))
    {
    }

    MachineConfig cfg;
    Cache llc;
    MemHierarchy mem;
};

} // namespace

TEST(MemHierarchy, ColdMissGoesToDram)
{
    Fixture f;
    AccessOutcome out = f.mem.access(0x1000, false);
    EXPECT_EQ(out.level, MemLevel::dram);
    EXPECT_TRUE(out.l1Miss);
    EXPECT_TRUE(out.l2Miss);
    EXPECT_TRUE(out.llcRef);
    EXPECT_TRUE(out.llcMiss);
    EXPECT_EQ(out.cycles, f.cfg.latency.dram);
}

TEST(MemHierarchy, SecondAccessHitsL1)
{
    Fixture f;
    f.mem.access(0x1000, false);
    AccessOutcome out = f.mem.access(0x1000, false);
    EXPECT_EQ(out.level, MemLevel::l1);
    EXPECT_FALSE(out.l1Miss);
    EXPECT_FALSE(out.llcRef);
    EXPECT_EQ(out.cycles, f.cfg.latency.l1);
}

TEST(MemHierarchy, FillPopulatesAllLevels)
{
    Fixture f;
    f.mem.access(0x1000, false);
    EXPECT_TRUE(f.mem.l1().contains(0x1000));
    EXPECT_TRUE(f.mem.l2().contains(0x1000));
    EXPECT_TRUE(f.mem.llc().contains(0x1000));
    EXPECT_EQ(f.mem.probe(0x1000), MemLevel::l1);
}

TEST(MemHierarchy, L2HitAfterL1Eviction)
{
    Fixture f;
    f.mem.access(0x1000, false);
    // Evict from L1 by filling its set: L1 has 64 sets, so stride
    // 64*64 = 4096 collides; 8 ways => 9 fills evict the line.
    for (int i = 1; i <= 9; ++i)
        f.mem.access(0x1000 + static_cast<Addr>(i) * 4096, false);
    ASSERT_FALSE(f.mem.l1().contains(0x1000));
    ASSERT_TRUE(f.mem.l2().contains(0x1000));
    AccessOutcome out = f.mem.access(0x1000, false);
    EXPECT_EQ(out.level, MemLevel::l2);
    EXPECT_TRUE(out.l1Miss);
    EXPECT_FALSE(out.l2Miss);
    EXPECT_EQ(out.cycles, f.cfg.latency.l2);
}

TEST(MemHierarchy, ClflushInvalidatesEverywhere)
{
    Fixture f;
    f.mem.access(0x2000, false);
    AccessOutcome flush = f.mem.clflush(0x2000);
    EXPECT_EQ(flush.cycles, f.cfg.latency.clflush);
    EXPECT_EQ(flush.level, MemLevel::l1); // deepest... first found
    EXPECT_EQ(f.mem.probe(0x2000), MemLevel::dram);
    AccessOutcome out = f.mem.access(0x2000, false);
    EXPECT_EQ(out.level, MemLevel::dram);
}

TEST(MemHierarchy, ClflushAbsentLine)
{
    Fixture f;
    AccessOutcome flush = f.mem.clflush(0x9000);
    EXPECT_EQ(flush.level, MemLevel::dram);
}

TEST(MemHierarchy, OutcomeEventsLoad)
{
    AccessOutcome out;
    out.l1Miss = true;
    out.l2Miss = true;
    out.llcRef = true;
    out.llcMiss = false;
    EventVector ev = MemHierarchy::outcomeEvents(out, false);
    EXPECT_EQ(at(ev, HwEvent::loadRetired), 1u);
    EXPECT_EQ(at(ev, HwEvent::storeRetired), 0u);
    EXPECT_EQ(at(ev, HwEvent::l1dReference), 1u);
    EXPECT_EQ(at(ev, HwEvent::l1dMiss), 1u);
    EXPECT_EQ(at(ev, HwEvent::l2Miss), 1u);
    EXPECT_EQ(at(ev, HwEvent::llcReference), 1u);
    EXPECT_EQ(at(ev, HwEvent::llcMiss), 0u);
}

TEST(MemHierarchy, OutcomeEventsStoreHit)
{
    AccessOutcome out; // L1 hit
    EventVector ev = MemHierarchy::outcomeEvents(out, true);
    EXPECT_EQ(at(ev, HwEvent::storeRetired), 1u);
    EXPECT_EQ(at(ev, HwEvent::l1dMiss), 0u);
    EXPECT_EQ(at(ev, HwEvent::llcReference), 0u);
}

TEST(MemHierarchy, SharedLlcVisibleAcrossHierarchies)
{
    MachineConfig cfg = MachineConfig::corei7_920();
    Cache llc("LLC", cfg.llc, Random(2));
    MemHierarchy core0(cfg, &llc, Random(3));
    MemHierarchy core1(cfg, &llc, Random(4));

    core0.access(0x5000, false);
    // Core 1's private caches are cold but the LLC is shared.
    AccessOutcome out = core1.access(0x5000, false);
    EXPECT_EQ(out.level, MemLevel::llc);
    EXPECT_TRUE(out.llcRef);
    EXPECT_FALSE(out.llcMiss);
}
