#include <gtest/gtest.h>

#include "hw/machine_config.hh"
#include "hw/mem_hierarchy.hh"

using namespace klebsim;
using namespace klebsim::hw;

namespace
{

class MachinePreset
    : public ::testing::TestWithParam<MachineConfig (*)()>
{
};

} // namespace

TEST_P(MachinePreset, GeometryIsConsistent)
{
    MachineConfig cfg = GetParam()();
    for (const CacheGeometry *g : {&cfg.l1d, &cfg.l2, &cfg.llc}) {
        EXPECT_GT(g->sets(), 0u);
        EXPECT_EQ(g->sets() * g->ways * g->lineSize, g->sizeBytes);
    }
    // Strictly growing capacity down the hierarchy.
    EXPECT_LT(cfg.l1d.sizeBytes, cfg.l2.sizeBytes);
    EXPECT_LT(cfg.l2.sizeBytes, cfg.llc.sizeBytes);
    // Strictly growing latency.
    EXPECT_LT(cfg.latency.l1, cfg.latency.l2);
    EXPECT_LT(cfg.latency.l2, cfg.latency.llc);
    EXPECT_LT(cfg.latency.llc, cfg.latency.dram);
    EXPECT_GE(cfg.numCores, 1);
    EXPECT_GT(cfg.coreFreqHz, 1e9);
    EXPECT_GT(cfg.memSampleCap, 0u);
}

TEST_P(MachinePreset, CachesConstructAndOperate)
{
    MachineConfig cfg = GetParam()();
    Cache llc("LLC", cfg.llc, Random(1));
    MemHierarchy mem(cfg, &llc, Random(2));
    AccessOutcome cold = mem.access(0x1234000, false);
    EXPECT_EQ(cold.level, MemLevel::dram);
    AccessOutcome warm = mem.access(0x1234000, false);
    EXPECT_EQ(warm.level, MemLevel::l1);
}

INSTANTIATE_TEST_SUITE_P(
    Presets, MachinePreset,
    ::testing::Values(&MachineConfig::corei7_920,
                      &MachineConfig::xeon8259cl),
    [](const ::testing::TestParamInfo<MachineConfig (*)()> &info) {
        return info.param == &MachineConfig::corei7_920
                   ? "corei7_920"
                   : "xeon8259cl";
    });

TEST(MachineConfig, PresetsDiffer)
{
    MachineConfig i7 = MachineConfig::corei7_920();
    MachineConfig xeon = MachineConfig::xeon8259cl();
    EXPECT_NE(i7.name, xeon.name);
    EXPECT_GT(xeon.llc.sizeBytes, i7.llc.sizeBytes);
    EXPECT_GT(xeon.l2.sizeBytes, i7.l2.sizeBytes);
    // The Cascade Lake LLC uses a non-power-of-two way count —
    // exercised deliberately (modulo indexing).
    EXPECT_EQ(xeon.llc.ways, 11u);
}
