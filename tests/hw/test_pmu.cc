#include <gtest/gtest.h>

#include "hw/pmu.hh"

using namespace klebsim::hw;
namespace msrns = klebsim::hw::msr;

namespace
{

EventVector
deltas(std::initializer_list<std::pair<HwEvent, std::uint64_t>> xs)
{
    EventVector v = zeroEvents();
    for (auto [ev, n] : xs)
        at(v, ev) = n;
    return v;
}

} // namespace

TEST(Pmu, ProgrammableCounterCounts)
{
    Pmu pmu;
    pmu.programCounter(0, HwEvent::llcMiss);
    pmu.globalEnableAll();
    pmu.addEvents(deltas({{HwEvent::llcMiss, 7}}), PrivLevel::user);
    EXPECT_EQ(pmu.counterValue(0), 7u);
}

TEST(Pmu, DisabledCounterDoesNotCount)
{
    Pmu pmu;
    pmu.programCounter(0, HwEvent::llcMiss);
    // Global enable never set.
    pmu.addEvents(deltas({{HwEvent::llcMiss, 7}}), PrivLevel::user);
    EXPECT_EQ(pmu.counterValue(0), 0u);
}

TEST(Pmu, GlobalDisableFreezes)
{
    Pmu pmu;
    pmu.programCounter(0, HwEvent::llcMiss);
    pmu.globalEnableAll();
    pmu.addEvents(deltas({{HwEvent::llcMiss, 3}}), PrivLevel::user);
    pmu.globalDisable();
    pmu.addEvents(deltas({{HwEvent::llcMiss, 5}}), PrivLevel::user);
    EXPECT_EQ(pmu.counterValue(0), 3u);
    pmu.globalEnableAll();
    pmu.addEvents(deltas({{HwEvent::llcMiss, 5}}), PrivLevel::user);
    EXPECT_EQ(pmu.counterValue(0), 8u);
}

TEST(Pmu, PrivilegeFilters)
{
    Pmu pmu;
    pmu.programCounter(0, HwEvent::llcMiss, true, false);  // usr
    pmu.programCounter(1, HwEvent::llcMiss, false, true);  // os
    pmu.programCounter(2, HwEvent::llcMiss, true, true);   // both
    pmu.globalEnableAll();
    pmu.addEvents(deltas({{HwEvent::llcMiss, 2}}), PrivLevel::user);
    pmu.addEvents(deltas({{HwEvent::llcMiss, 5}}),
                  PrivLevel::kernel);
    EXPECT_EQ(pmu.counterValue(0), 2u);
    EXPECT_EQ(pmu.counterValue(1), 5u);
    EXPECT_EQ(pmu.counterValue(2), 7u);
}

TEST(Pmu, FixedCounters)
{
    Pmu pmu;
    pmu.programFixed(0, true, false);
    pmu.programFixed(1, true, true);
    pmu.programFixed(2, false, true);
    pmu.globalEnableAll();
    pmu.addEvents(deltas({{HwEvent::instRetired, 100},
                          {HwEvent::coreCycles, 50},
                          {HwEvent::refCycles, 49}}),
                  PrivLevel::user);
    pmu.addEvents(deltas({{HwEvent::instRetired, 10},
                          {HwEvent::coreCycles, 5},
                          {HwEvent::refCycles, 4}}),
                  PrivLevel::kernel);
    EXPECT_EQ(pmu.fixedValue(0), 100u);
    EXPECT_EQ(pmu.fixedValue(1), 55u);
    EXPECT_EQ(pmu.fixedValue(2), 4u);
}

TEST(Pmu, CounterIndependence)
{
    Pmu pmu;
    pmu.programCounter(0, HwEvent::llcMiss);
    pmu.programCounter(1, HwEvent::branchRetired);
    pmu.globalEnableAll();
    pmu.addEvents(deltas({{HwEvent::llcMiss, 2},
                          {HwEvent::branchRetired, 9}}),
                  PrivLevel::user);
    EXPECT_EQ(pmu.counterValue(0), 2u);
    EXPECT_EQ(pmu.counterValue(1), 9u);
}

TEST(Pmu, MsrInterfaceRoundTrip)
{
    Pmu pmu;
    EXPECT_TRUE(pmu.decodesMsr(msrns::ia32Pmc0));
    EXPECT_TRUE(pmu.decodesMsr(msrns::ia32Perfevtsel0 + 3));
    EXPECT_TRUE(pmu.decodesMsr(msrns::ia32FixedCtrCtrl));
    EXPECT_FALSE(pmu.decodesMsr(msrns::ia32Tsc));

    // Program PMC1 to LLC_MISSES via raw MSR writes, as the real
    // K-LEB module would with wrmsr.
    const EventInfo &info = eventInfo(HwEvent::llcMiss);
    std::uint64_t sel = info.code |
                        (std::uint64_t(info.umask) << 8) |
                        (1ULL << 16) | (1ULL << 22);
    pmu.writeMsr(msrns::ia32Perfevtsel0 + 1, sel);
    pmu.writeMsr(msrns::ia32PerfGlobalCtrl, 0x2);
    pmu.addEvents(deltas({{HwEvent::llcMiss, 4}}), PrivLevel::user);
    EXPECT_EQ(pmu.readMsr(msrns::ia32Pmc0 + 1), 4u);
    EXPECT_EQ(pmu.readMsr(msrns::ia32Perfevtsel0 + 1), sel);
}

TEST(Pmu, Rdpmc)
{
    Pmu pmu;
    pmu.programCounter(2, HwEvent::storeRetired);
    pmu.programFixed(0, true, true);
    pmu.globalEnableAll();
    pmu.addEvents(deltas({{HwEvent::storeRetired, 11},
                          {HwEvent::instRetired, 99}}),
                  PrivLevel::user);
    EXPECT_EQ(pmu.rdpmc(2), 11u);
    EXPECT_EQ(pmu.rdpmc(Pmu::rdpmcFixedFlag | 0), 99u);
}

TEST(Pmu, CounterWidth48Bits)
{
    Pmu pmu;
    pmu.programCounter(0, HwEvent::llcMiss);
    pmu.globalEnableAll();
    pmu.setCounterValue(0, Pmu::counterMask - 1);
    pmu.addEvents(deltas({{HwEvent::llcMiss, 3}}), PrivLevel::user);
    EXPECT_EQ(pmu.counterValue(0), 1u); // wrapped
}

TEST(Pmu, OverflowCallback)
{
    Pmu pmu;
    std::vector<int> overflows;
    pmu.setOverflowCallback([&](int idx) {
        overflows.push_back(idx);
    });
    pmu.programCounter(0, HwEvent::llcMiss, true, false, true);
    pmu.globalEnableAll();
    pmu.setCounterValue(0, Pmu::counterMask - 9);
    pmu.addEvents(deltas({{HwEvent::llcMiss, 10}}),
                  PrivLevel::user);
    ASSERT_EQ(overflows.size(), 1u);
    EXPECT_EQ(overflows[0], 0);
    // Overflow status bit visible and clearable via OVF_CTRL.
    EXPECT_EQ(pmu.readMsr(msrns::ia32PerfGlobalStatus) & 1, 1u);
    pmu.writeMsr(msrns::ia32PerfGlobalOvfCtrl, 1);
    EXPECT_EQ(pmu.readMsr(msrns::ia32PerfGlobalStatus) & 1, 0u);
}

TEST(Pmu, NoPmiNoCallback)
{
    Pmu pmu;
    int called = 0;
    pmu.setOverflowCallback([&](int) { ++called; });
    pmu.programCounter(0, HwEvent::llcMiss, true, false, false);
    pmu.globalEnableAll();
    pmu.setCounterValue(0, Pmu::counterMask);
    pmu.addEvents(deltas({{HwEvent::llcMiss, 1}}), PrivLevel::user);
    EXPECT_EQ(called, 0);
    EXPECT_EQ(pmu.counterValue(0), 0u);
}

TEST(Pmu, ClearCounter)
{
    Pmu pmu;
    pmu.programCounter(0, HwEvent::llcMiss);
    pmu.globalEnableAll();
    pmu.addEvents(deltas({{HwEvent::llcMiss, 5}}), PrivLevel::user);
    pmu.clearCounter(0);
    EXPECT_EQ(pmu.counterValue(0), 0u);
    EXPECT_FALSE(pmu.counterActive(0));
    pmu.addEvents(deltas({{HwEvent::llcMiss, 5}}), PrivLevel::user);
    EXPECT_EQ(pmu.counterValue(0), 0u);
}

TEST(Pmu, CounterEventDecoding)
{
    Pmu pmu;
    pmu.programCounter(3, HwEvent::arithMul);
    ASSERT_TRUE(pmu.counterEvent(3).has_value());
    EXPECT_EQ(*pmu.counterEvent(3), HwEvent::arithMul);
    EXPECT_FALSE(pmu.counterEvent(0).has_value());
}
