#include <gtest/gtest.h>

#include "hw/perf_event.hh"

using namespace klebsim::hw;

TEST(PerfEvent, CatalogComplete)
{
    for (std::size_t i = 0; i < numHwEvents; ++i) {
        auto ev = static_cast<HwEvent>(i);
        const EventInfo &info = eventInfo(ev);
        EXPECT_EQ(info.event, ev);
        EXPECT_NE(info.name, nullptr);
        EXPECT_GT(std::string(info.name).size(), 0u);
    }
}

TEST(PerfEvent, NamesUnique)
{
    std::set<std::string> names;
    for (std::size_t i = 0; i < numHwEvents; ++i)
        names.insert(eventName(static_cast<HwEvent>(i)));
    EXPECT_EQ(names.size(), numHwEvents);
}

TEST(PerfEvent, SelectorsUnique)
{
    std::set<std::pair<int, int>> sels;
    for (std::size_t i = 0; i < numHwEvents; ++i) {
        const EventInfo &info = eventInfo(static_cast<HwEvent>(i));
        sels.insert({info.code, info.umask});
    }
    EXPECT_EQ(sels.size(), numHwEvents);
}

TEST(PerfEvent, LookupByName)
{
    auto ev = eventByName("LLC_MISSES");
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev, HwEvent::llcMiss);
    EXPECT_FALSE(eventByName("NOT_AN_EVENT").has_value());
}

TEST(PerfEvent, LookupBySelector)
{
    const EventInfo &info = eventInfo(HwEvent::llcReference);
    auto ev = eventBySelector(info.code, info.umask);
    ASSERT_TRUE(ev.has_value());
    EXPECT_EQ(*ev, HwEvent::llcReference);
    EXPECT_FALSE(eventBySelector(0xff, 0xff).has_value());
}

TEST(PerfEvent, ArchitecturalFlags)
{
    EXPECT_TRUE(eventInfo(HwEvent::instRetired).architectural);
    EXPECT_TRUE(eventInfo(HwEvent::loadRetired).architectural);
    EXPECT_FALSE(eventInfo(HwEvent::llcMiss).architectural);
    EXPECT_FALSE(
        eventInfo(HwEvent::branchMispredicted).architectural);
}

TEST(PerfEvent, EventVectorHelpers)
{
    EventVector a = zeroEvents();
    EXPECT_EQ(at(a, HwEvent::llcMiss), 0u);
    at(a, HwEvent::llcMiss) = 5;
    EventVector b = zeroEvents();
    at(b, HwEvent::llcMiss) = 7;
    at(b, HwEvent::instRetired) = 100;
    accumulate(a, b);
    EXPECT_EQ(at(a, HwEvent::llcMiss), 12u);
    EXPECT_EQ(at(a, HwEvent::instRetired), 100u);
}
