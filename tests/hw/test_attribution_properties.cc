#include <gtest/gtest.h>

#include "hw/cpu_core.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::hw;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeChunk;

namespace
{

/**
 * The core invariant of the lazy-attribution engine: no matter how
 * execution is sliced (sync granularity, preemptions, interleaved
 * charges), total attributed events are exact and monotone.
 */
class AttributionProperty
    : public ::testing::TestWithParam<Tick> // sync granularity
{
  protected:
    struct Fixture
    {
        Fixture()
            : cfg(MachineConfig::corei7_920()),
              llc("LLC", cfg.llc, Random(2)),
              core(0, cfg, eq, &llc, Random(3))
        {
        }

        MachineConfig cfg;
        sim::EventQueue eq;
        Cache llc;
        CpuCore core;
    };
};

} // namespace

TEST_P(AttributionProperty, TotalsExactForAnySyncGranularity)
{
    Fixture f;
    Tick step = GetParam();

    std::vector<WorkChunk> chunks;
    Random rng(9);
    std::uint64_t expected_instr = 0;
    std::uint64_t expected_branches = 0;
    for (int i = 0; i < 12; ++i) {
        std::uint64_t n = 40000 + rng.below(120000);
        WorkChunk c = computeChunk(n, 1.0 + rng.uniform() * 2.0);
        chunks.push_back(c);
        expected_instr += n;
        expected_branches += n / 8;
    }
    FixedWorkSource src(std::move(chunks));
    ExecContext ctx(&src);

    f.core.attachContext(&ctx);
    PrepareResult res = f.core.prepare(1000_ms);
    ASSERT_TRUE(res.completes);

    std::uint64_t prev_instr = 0;
    for (Tick t = step; t < res.available; t += step) {
        f.eq.runUntil(t);
        f.core.syncTo(t);
        // Monotone non-decreasing attribution.
        ASSERT_GE(ctx.instructionsRetired(), prev_instr);
        prev_instr = ctx.instructionsRetired();
    }
    f.eq.runUntil(res.available);
    f.core.syncTo(res.available);

    EXPECT_EQ(ctx.instructionsRetired(), expected_instr);
    EXPECT_EQ(at(ctx.totalEvents(), HwEvent::branchRetired),
              expected_branches);
    EXPECT_TRUE(ctx.exhausted());
    f.core.detachContext();
}

TEST_P(AttributionProperty, ChargesNeverCorruptWorkloadTotals)
{
    Fixture f;
    Tick step = GetParam();

    FixedWorkSource src(
        std::vector<WorkChunk>(10, computeChunk(150000, 2.0)));
    ExecContext ctx(&src);
    f.core.attachContext(&ctx);
    PrepareResult res = f.core.prepare(1000_ms);
    ASSERT_TRUE(res.completes);

    // Interleave kernel charges at every sync point; the workload's
    // own totals must still come out exact, just later.
    Tick end = res.available;
    Tick now = 0;
    while (now < end) {
        now = std::min(now + step, end);
        f.eq.runUntil(now);
        f.core.syncTo(now);
        ChargeSpec spec;
        spec.duration = 3_us;
        spec.footprintBytes = 2048;
        f.core.charge(spec);
        end += 3_us; // work shifted by the charge
        now = f.core.attributedUpTo();
        if (f.eq.curTick() < now)
            f.eq.runUntil(now);
    }
    f.eq.runUntil(end);
    f.core.syncTo(end);
    EXPECT_EQ(ctx.instructionsRetired(), 1500000u);
    EXPECT_TRUE(ctx.exhausted());
    f.core.detachContext();
}

INSTANTIATE_TEST_SUITE_P(
    SyncGranularities, AttributionProperty,
    ::testing::Values(usToTicks(7), usToTicks(50), usToTicks(100),
                      usToTicks(333), msToTicks(1), msToTicks(5)),
    [](const ::testing::TestParamInfo<Tick> &info) {
        return "step_" +
               std::to_string(info.param / tickPerUs) + "us";
    });
