/**
 * @file
 * Chunk cost-table correctness: the compiled fast path in CpuCore
 * memoizes per-chunk timing/event results keyed on the chunk's
 * signature AND the machine-config fingerprint.  These tests pin
 * the stale-memo bug class: a cached cost must never survive a
 * change to the chunk shape, a phase boundary that cycles more
 * signatures than the table holds, or a mutation of the config
 * parameters the cost was derived from.  They also pin the
 * batched engine against the retained reference interpreter
 * (cfg.batchedChunkEngine = false) across a seeded property sweep.
 */

#include <gtest/gtest.h>

#include <vector>

#include "hw/cpu_core.hh"
#include "workload/address_streams.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::hw;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeChunk;

namespace
{

struct Fixture
{
    explicit Fixture(MachineConfig config = MachineConfig::corei7_920())
        : cfg(config),
          llc("LLC", cfg.llc, Random(2)),
          core(0, cfg, eq, &llc, Random(3))
    {
    }

    /** Run @p chunks to completion; @return total duration. */
    Tick
    run(const std::vector<WorkChunk> &chunks, ExecContext *ctxOut = nullptr)
    {
        FixedWorkSource src(chunks);
        ExecContext ctx(&src);
        core.attachContext(&ctx);
        Tick start = eq.curTick();
        Tick total = 0;
        while (true) {
            PrepareResult res = core.prepare(1000_ms);
            total += res.available;
            eq.runUntil(start + total);
            core.syncTo(start + total);
            if (res.completes)
                break;
        }
        if (ctxOut != nullptr)
            *ctxOut = ctx;
        core.detachContext();
        return total;
    }

    MachineConfig cfg;
    sim::EventQueue eq;
    Cache llc;
    CpuCore core;
};

/** A distinct streamless compute signature per @p variant. */
WorkChunk
variantChunk(unsigned variant)
{
    WorkChunk c = computeChunk(100000 + variant * 1000, 2.0);
    c.branches = 10000 + variant * 100;
    c.mispredictRate = 0.02 + 0.001 * static_cast<double>(variant);
    return c;
}

} // namespace

TEST(ChunkCostTable, RepeatedChunkMatchesColdExecution)
{
    // One cold execution vs the same chunk repeated: table hits
    // (and run coalescing) must reproduce the cold cost exactly,
    // with events scaling by exactly the repeat count.
    WorkChunk c = variantChunk(0);

    Fixture cold;
    ExecContext coldCtx(nullptr);
    Tick one = cold.run({c}, &coldCtx);

    Fixture warm;
    ExecContext warmCtx(nullptr);
    Tick eight = warm.run(std::vector<WorkChunk>(8, c), &warmCtx);

    EXPECT_EQ(eight, 8 * one);
    EXPECT_EQ(warmCtx.instructionsRetired(),
              8 * coldCtx.instructionsRetired());
    for (std::size_t i = 0; i < coldCtx.totalEvents().size(); ++i)
        EXPECT_EQ(warmCtx.totalEvents()[i],
                  8 * coldCtx.totalEvents()[i])
            << "event " << i;
}

TEST(ChunkCostTable, AlternatingSignaturesStayExact)
{
    // A phase boundary in miniature: two interleaved signatures
    // must each keep their own cost, never each other's.
    WorkChunk a = variantChunk(1);
    WorkChunk b = variantChunk(2);

    Tick costA = Fixture().run({a});
    Tick costB = Fixture().run({b});
    ASSERT_NE(costA, costB);

    Fixture mixed;
    Tick total = mixed.run({a, b, a, b, a, b});
    EXPECT_EQ(total, 3 * costA + 3 * costB);
}

TEST(ChunkCostTable, EvictionCycleStaysExact)
{
    // More live signatures than the table holds: every execution
    // after the working set wraps must re-derive (not misattribute)
    // the evicted cost.  12 variants > the 8-entry table.
    std::vector<WorkChunk> cycle;
    Tick expected = 0;
    for (unsigned v = 0; v < 12; ++v) {
        WorkChunk c = variantChunk(v);
        cycle.push_back(c);
        expected += Fixture().run({c});
    }
    // Two full passes: the second pass runs entirely against a
    // table whose entries were all evicted and restored.
    std::vector<WorkChunk> twice = cycle;
    twice.insert(twice.end(), cycle.begin(), cycle.end());
    EXPECT_EQ(Fixture().run(twice), 2 * expected);
}

TEST(ChunkCostTable, BranchPenaltyChangeInvalidatesEntry)
{
    // The config fingerprint must catch parameter mutation: the
    // same chunk signature re-executed after the branch penalty
    // changes must be re-derived, not served from the stale entry.
    WorkChunk c = variantChunk(3);

    Fixture f;
    Tick before = f.run({c});
    f.cfg.pipeline.branchMispredictPenalty *= 4;
    Tick after = f.run({c});
    EXPECT_GT(after, before);

    // And the re-derived cost is what a cold core with the mutated
    // config computes.
    MachineConfig hot = MachineConfig::corei7_920();
    hot.pipeline.branchMispredictPenalty *= 4;
    EXPECT_EQ(after, Fixture(hot).run({c}));
}

TEST(ChunkCostTable, PerFrequencyCostsStayIndependent)
{
    // The core latches coreFreqHz into its clock at construction
    // (mutating the config later cannot retune a live core), so
    // the frequency fingerprint guards table reuse across cores
    // built at different speeds: each core's memoized cost must be
    // derived from its own clock and stay exactly self-consistent
    // under repetition.
    WorkChunk c = variantChunk(4);

    MachineConfig fast = MachineConfig::corei7_920();
    fast.coreFreqHz *= 2.0;

    Tick slowOne = Fixture().run({c});
    Tick fastOne = Fixture(fast).run({c});
    EXPECT_LT(fastOne, slowOne);

    EXPECT_EQ(Fixture().run(std::vector<WorkChunk>(5, c)),
              5 * slowOne);
    EXPECT_EQ(Fixture(fast).run(std::vector<WorkChunk>(5, c)),
              5 * fastOne);
}

TEST(ChunkCostTable, StallExposureChangeInvalidatesEntry)
{
    // Memory-flavoured knob: chargeable via preExecuted=false
    // streamless chunks only through the fingerprint, since the
    // chunk signature itself is unchanged.
    WorkChunk c = variantChunk(5);
    c.stallExposureScale = 1.0;

    Fixture f;
    Tick before = f.run({c});
    f.cfg.pipeline.memStallExposure = 0.95;
    Tick after = f.run({c});

    MachineConfig exposed = MachineConfig::corei7_920();
    exposed.pipeline.memStallExposure = 0.95;
    Tick cold = Fixture(exposed).run({c});
    EXPECT_EQ(after, cold);
    // (The compute-only chunk may be stall-free; the pinned
    // property is re-derivation, not that the knob moved the cost.)
    (void)before;
}

TEST(ChunkEngineEquivalence, BatchedMatchesReferenceAcrossSeeds)
{
    // 16-seed property sweep: the compiled/batched engine and the
    // retained reference interpreter must be bit-identical on a
    // workload mixing compute phases, streamed memory phases (SoA
    // fill path), and pre-executed chunks — including across phase
    // boundaries that alternate signatures.
    for (unsigned seed = 0; seed < 16; ++seed) {
        workload::MemPatternSpec pat =
            (seed % 2 == 0)
                ? workload::MemPatternSpec::randomUniform(
                      (8u + seed) * 1024 * 1024)
                : workload::MemPatternSpec::sequential(
                      (4u + seed) * 1024 * 1024);

        auto build = [&](Random rng) {
            struct Built
            {
                std::unique_ptr<hw::AddressStream> stream;
                std::vector<WorkChunk> chunks;
            };
            Built b;
            b.stream = workload::makeAddressStream(
                pat, 0x10000000 + seed * 0x1000, rng);
            WorkChunk mem;
            mem.instructions = 50000 + seed * 777;
            mem.loads = 20000 + seed * 333;
            mem.stores = 5000 + seed * 111;
            mem.baseIpc = 1.5;
            mem.stream = b.stream.get();
            WorkChunk pre;
            pre.preExecuted = true;
            pre.instructions = 4000 + seed;
            at(pre.preEvents, HwEvent::instRetired) =
                pre.instructions;
            at(pre.preEvents, HwEvent::llcMiss) = 17 + seed;
            pre.preStallCycles = 9000;
            pre.baseIpc = 1.0;
            WorkChunk flopsy = computeChunk(60000 + seed * 101, 2.0);
            flopsy.flops = 1e5 + seed * 13.0;
            // Repeats of the compute signatures exercise the table
            // hit and coalescing paths; the interleave exercises
            // phase-boundary invalidation.
            b.chunks = {variantChunk(seed % 6),
                        mem,
                        variantChunk(seed % 6),
                        variantChunk(seed % 6),
                        pre,
                        flopsy,
                        variantChunk((seed + 1) % 6),
                        mem};
            return b;
        };

        MachineConfig refCfg = MachineConfig::corei7_920();
        refCfg.batchedChunkEngine = false;
        Fixture reference(refCfg);
        auto refBuilt = build(Random(100 + seed));
        ExecContext refCtx(nullptr);
        Tick refTicks = reference.run(refBuilt.chunks, &refCtx);

        Fixture batched; // batchedChunkEngine defaults to true
        ASSERT_TRUE(batched.cfg.batchedChunkEngine);
        auto batBuilt = build(Random(100 + seed));
        ExecContext batCtx(nullptr);
        Tick batTicks = batched.run(batBuilt.chunks, &batCtx);

        EXPECT_EQ(batTicks, refTicks) << "seed " << seed;
        EXPECT_EQ(batCtx.instructionsRetired(),
                  refCtx.instructionsRetired())
            << "seed " << seed;
        EXPECT_EQ(batCtx.flopsDone(), refCtx.flopsDone())
            << "seed " << seed;
        for (std::size_t i = 0; i < refCtx.totalEvents().size();
             ++i)
            EXPECT_EQ(batCtx.totalEvents()[i],
                      refCtx.totalEvents()[i])
                << "seed " << seed << " event " << i;
    }
}
