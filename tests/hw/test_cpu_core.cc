#include <gtest/gtest.h>

#include "hw/cpu_core.hh"
#include "workload/address_streams.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::hw;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeChunk;
using klebsim::workload::computeSource;

namespace
{

struct Fixture
{
    Fixture()
        : cfg(MachineConfig::corei7_920()),
          llc("LLC", cfg.llc, Random(2)),
          core(0, cfg, eq, &llc, Random(3))
    {
    }

    MachineConfig cfg;
    sim::EventQueue eq;
    Cache llc;
    CpuCore core;
};

} // namespace

TEST(CpuCore, PrepareComputesDuration)
{
    Fixture f;
    // 1e6 instructions at IPC 2 = 5e5 cycles @2.67 GHz ~ 187.3 us.
    FixedWorkSource src = computeSource(1, 1000000, 2.0);
    ExecContext ctx(&src);
    f.core.attachContext(&ctx);
    PrepareResult res = f.core.prepare(10_ms);
    EXPECT_TRUE(res.completes);
    double us = ticksToUs(res.available);
    EXPECT_NEAR(us, 187.3, 1.0);
    f.core.syncTo(f.eq.curTick());
    f.core.detachContext();
}

TEST(CpuCore, PrepareBoundedByHorizon)
{
    Fixture f;
    FixedWorkSource src = computeSource(100, 1000000, 2.0);
    ExecContext ctx(&src);
    f.core.attachContext(&ctx);
    PrepareResult res = f.core.prepare(1_ms);
    EXPECT_FALSE(res.completes);
    EXPECT_EQ(res.available, 1_ms);
    EXPECT_GE(ctx.preparedAhead(), 1_ms);
    // Not all 100 chunks were needed for a 1 ms horizon.
    EXPECT_LT(src.emitted(), 100u);
    f.core.syncTo(f.eq.curTick());
    f.core.detachContext();
}

TEST(CpuCore, SyncAttributesEventsExactly)
{
    Fixture f;
    FixedWorkSource src = computeSource(4, 100000, 2.0);
    ExecContext ctx(&src);
    f.core.attachContext(&ctx);
    PrepareResult res = f.core.prepare(10_ms);
    ASSERT_TRUE(res.completes);

    f.eq.runUntil(res.available);
    f.core.syncTo(res.available);
    EXPECT_EQ(ctx.instructionsRetired(), 400000u);
    EXPECT_EQ(at(ctx.totalEvents(), HwEvent::branchRetired),
              4 * 12500u);
    EXPECT_TRUE(ctx.exhausted());
    f.core.detachContext();
}

TEST(CpuCore, PartialSyncIsProRata)
{
    Fixture f;
    FixedWorkSource src = computeSource(1, 1000000, 2.0);
    ExecContext ctx(&src);
    f.core.attachContext(&ctx);
    PrepareResult res = f.core.prepare(10_ms);

    Tick half = res.available / 2;
    f.eq.runUntil(half);
    f.core.syncTo(half);
    // Half the chunk's instructions, within rounding.
    EXPECT_NEAR(static_cast<double>(ctx.instructionsRetired()),
                500000.0, 2.0);

    f.eq.runUntil(res.available);
    f.core.syncTo(res.available);
    EXPECT_EQ(ctx.instructionsRetired(), 1000000u); // exact total
    f.core.detachContext();
}

TEST(CpuCore, PmuSeesAttributedEvents)
{
    Fixture f;
    f.core.pmu().programFixed(0, true, true);
    f.core.pmu().programCounter(0, HwEvent::branchRetired, true,
                                true);
    f.core.pmu().globalEnableAll();

    FixedWorkSource src = computeSource(2, 100000, 2.0);
    ExecContext ctx(&src);
    f.core.attachContext(&ctx);
    PrepareResult res = f.core.prepare(10_ms);
    f.eq.runUntil(res.available);
    f.core.syncTo(res.available);
    EXPECT_EQ(f.core.pmu().fixedValue(0), 200000u);
    EXPECT_EQ(f.core.pmu().counterValue(0), 2 * 12500u);
    f.core.detachContext();
}

TEST(CpuCore, ContextSurvivesDetachReattach)
{
    Fixture f;
    FixedWorkSource src = computeSource(1, 1000000, 2.0);
    ExecContext ctx(&src);
    f.core.attachContext(&ctx);
    PrepareResult res = f.core.prepare(10_ms);
    Tick third = res.available / 3;
    f.eq.runUntil(third);
    f.core.syncTo(third);
    f.core.detachContext();
    std::uint64_t after_first = ctx.instructionsRetired();
    EXPECT_GT(after_first, 0u);

    // Re-attach later; remaining work picks up where it left off.
    f.eq.runUntil(third + 1_ms);
    f.core.attachContext(&ctx);
    Tick resume = f.eq.curTick();
    PrepareResult res2 = f.core.prepare(10_ms);
    EXPECT_TRUE(res2.completes);
    f.eq.runUntil(resume + res2.available);
    f.core.syncTo(resume + res2.available);
    EXPECT_EQ(ctx.instructionsRetired(), 1000000u);
    f.core.detachContext();
}

TEST(CpuCore, ChargeShiftsWorkAndCountsKernelEvents)
{
    Fixture f;
    f.core.pmu().programFixed(0, true, true);
    f.core.pmu().globalEnableAll();

    FixedWorkSource src = computeSource(1, 1000000, 2.0);
    ExecContext ctx(&src);
    f.core.attachContext(&ctx);
    PrepareResult res = f.core.prepare(10_ms);

    Tick quarter = res.available / 4;
    f.eq.runUntil(quarter);
    f.core.syncTo(quarter);
    std::uint64_t before_charge = ctx.instructionsRetired();

    ChargeSpec spec;
    spec.duration = 50_us;
    spec.priv = PrivLevel::kernel;
    f.core.charge(spec);
    EXPECT_EQ(f.core.attributedUpTo(), quarter + 50_us);

    // The charge consumed wall time but no workload progress.
    EXPECT_EQ(ctx.instructionsRetired(), before_charge);
    // Kernel instructions were counted (fixed ctr counts both privs).
    EXPECT_GT(f.core.pmu().fixedValue(0), before_charge);

    // The workload now finishes 50 us later than originally planned.
    Tick end = quarter + 50_us + (res.available - quarter);
    f.eq.runUntil(end);
    f.core.syncTo(end);
    EXPECT_EQ(ctx.instructionsRetired(), 1000000u);
    f.core.detachContext();
}

TEST(CpuCore, ChargeUserPrivFiltered)
{
    Fixture f;
    // Count user-mode only.
    f.core.pmu().programFixed(0, true, false);
    f.core.pmu().globalEnableAll();
    f.core.syncTo(f.eq.curTick());
    ChargeSpec spec;
    spec.duration = 10_us;
    spec.priv = PrivLevel::kernel;
    f.core.charge(spec);
    EXPECT_EQ(f.core.pmu().fixedValue(0), 0u);
}

TEST(CpuCore, ChargePollutesCache)
{
    Fixture f;
    f.core.syncTo(f.eq.curTick());
    std::uint64_t misses_before = f.core.mem().l1().stats().misses;
    ChargeSpec spec;
    spec.duration = 20_us;
    spec.footprintBytes = 16 * 1024;
    f.core.charge(spec);
    EXPECT_GT(f.core.mem().l1().stats().misses, misses_before);
}

TEST(CpuCore, MemoryChunksProduceCacheEvents)
{
    Fixture f;
    workload::MemPatternSpec pat =
        workload::MemPatternSpec::randomUniform(64 * 1024 * 1024);
    auto stream =
        workload::makeAddressStream(pat, 0x10000000, Random(5));

    WorkChunk chunk;
    chunk.instructions = 100000;
    chunk.loads = 30000;
    chunk.stores = 10000;
    chunk.baseIpc = 2.0;
    chunk.stream = stream.get();
    FixedWorkSource src({chunk});
    ExecContext ctx(&src);

    f.core.attachContext(&ctx);
    PrepareResult res = f.core.prepare(100_ms);
    ASSERT_TRUE(res.completes);
    f.eq.runUntil(res.available);
    f.core.syncTo(res.available);

    const EventVector &ev = ctx.totalEvents();
    EXPECT_EQ(at(ev, HwEvent::loadRetired), 30000u);
    EXPECT_EQ(at(ev, HwEvent::storeRetired), 10000u);
    EXPECT_EQ(at(ev, HwEvent::l1dReference), 40000u);
    // Random accesses over 64 MB: nearly everything misses, and the
    // scaled miss counts must stay within the physical bounds.
    EXPECT_GT(at(ev, HwEvent::llcMiss), 30000u);
    EXPECT_LE(at(ev, HwEvent::llcMiss),
              at(ev, HwEvent::llcReference));
    EXPECT_LE(at(ev, HwEvent::llcReference),
              at(ev, HwEvent::l1dReference));
    // Stalls must make the chunk slower than pure compute.
    EXPECT_GT(res.available, usToTicks(18.7));
    f.core.detachContext();
}

TEST(CpuCore, PreExecutedChunkUsesGivenCounts)
{
    Fixture f;
    WorkChunk chunk;
    chunk.preExecuted = true;
    chunk.instructions = 5000;
    at(chunk.preEvents, HwEvent::instRetired) = 5000;
    at(chunk.preEvents, HwEvent::llcMiss) = 123;
    chunk.preStallCycles = 10000;
    chunk.baseIpc = 1.0;
    FixedWorkSource src({chunk});
    ExecContext ctx(&src);
    f.core.attachContext(&ctx);
    PrepareResult res = f.core.prepare(10_ms);
    f.eq.runUntil(res.available);
    f.core.syncTo(res.available);
    EXPECT_EQ(at(ctx.totalEvents(), HwEvent::llcMiss), 123u);
    EXPECT_EQ(ctx.instructionsRetired(), 5000u);
    f.core.detachContext();
}

TEST(CpuCore, FixedCyclesChunk)
{
    Fixture f;
    WorkChunk chunk;
    chunk.instructions = 100;
    chunk.fixedCycles = 267000; // exactly 100 us at 2.67 GHz
    FixedWorkSource src({chunk});
    ExecContext ctx(&src);
    f.core.attachContext(&ctx);
    PrepareResult res = f.core.prepare(10_ms);
    EXPECT_NEAR(ticksToUs(res.available), 100.0, 0.5);
    f.core.syncTo(f.eq.curTick());
    f.core.detachContext();
}

TEST(CpuCore, RdtscAdvancesWithTime)
{
    Fixture f;
    std::uint64_t t0 = f.core.rdtsc();
    f.eq.runUntil(1_ms);
    std::uint64_t t1 = f.core.rdtsc();
    // 1 ms at 2.66 GHz reference clock.
    EXPECT_NEAR(static_cast<double>(t1 - t0), 2.66e6, 1e4);
}

TEST(CpuCore, FlopsAttribution)
{
    Fixture f;
    WorkChunk chunk = computeChunk(100000, 2.0);
    chunk.flops = 500000.0;
    FixedWorkSource src({chunk});
    ExecContext ctx(&src);
    f.core.attachContext(&ctx);
    PrepareResult res = f.core.prepare(10_ms);
    Tick half = res.available / 2;
    f.eq.runUntil(half);
    f.core.syncTo(half);
    EXPECT_NEAR(ctx.flopsDone(), 250000.0, 500.0);
    f.eq.runUntil(res.available);
    f.core.syncTo(res.available);
    EXPECT_NEAR(ctx.flopsDone(), 500000.0, 1e-6);
    f.core.detachContext();
}
