#include <gtest/gtest.h>

#include "hw/cache.hh"

using namespace klebsim;
using namespace klebsim::hw;

namespace
{

CacheGeometry
smallGeom(ReplPolicy policy = ReplPolicy::lru)
{
    // 4 sets x 2 ways x 64 B = 512 B.
    return {512, 2, 64, policy};
}

} // namespace

TEST(Cache, GeometrySets)
{
    EXPECT_EQ(smallGeom().sets(), 4u);
    CacheGeometry big{8 * 1024 * 1024, 16, 64, ReplPolicy::lru};
    EXPECT_EQ(big.sets(), 8192u);
}

TEST(Cache, MissThenHit)
{
    Cache c("t", smallGeom(), Random(1));
    EXPECT_FALSE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x1000, false));
    EXPECT_TRUE(c.access(0x103f, false)); // same line
    EXPECT_FALSE(c.access(0x1040, false)); // next line
    EXPECT_EQ(c.stats().hits, 2u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(Cache, LruEviction)
{
    Cache c("t", smallGeom(), Random(1));
    // Three lines mapping to set 0 (line addr multiples of 4*64).
    Addr a = 0 * 256, b = 1 * 256 + 0x10000, d = 2 * 256 + 0x20000;
    // All map to set 0? setIndex = (addr/64) % 4.
    // a: 0, b: (0x10000/64 + 4) % 4 = 0 ... choose directly:
    a = 0;
    b = 4 * 64;  // set 0, different tag
    d = 8 * 64;  // set 0, different tag
    c.access(a, false);
    c.access(b, false);
    c.access(a, false);        // a most recent
    EXPECT_FALSE(c.access(d, false)); // evicts b (LRU)
    EXPECT_TRUE(c.contains(a));
    EXPECT_FALSE(c.contains(b));
    EXPECT_TRUE(c.contains(d));
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, ContainsHasNoSideEffects)
{
    Cache c("t", smallGeom(), Random(1));
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_EQ(c.stats().accesses(), 0u);
    c.access(0x40, false);
    EXPECT_TRUE(c.contains(0x40));
    EXPECT_EQ(c.stats().accesses(), 1u);
}

TEST(Cache, FlushLine)
{
    Cache c("t", smallGeom(), Random(1));
    c.access(0x40, false);
    EXPECT_TRUE(c.flushLine(0x40));
    EXPECT_FALSE(c.contains(0x40));
    EXPECT_FALSE(c.flushLine(0x40)); // already gone
    EXPECT_EQ(c.stats().flushes, 2u);
}

TEST(Cache, FlushAll)
{
    Cache c("t", smallGeom(), Random(1));
    for (Addr a = 0; a < 512; a += 64)
        c.access(a, false);
    EXPECT_GT(c.residentLines(), 0u);
    c.flushAll();
    EXPECT_EQ(c.residentLines(), 0u);
}

TEST(Cache, ResetStatsKeepsContents)
{
    Cache c("t", smallGeom(), Random(1));
    c.access(0x40, false);
    c.resetStats();
    EXPECT_EQ(c.stats().accesses(), 0u);
    EXPECT_TRUE(c.contains(0x40));
}

TEST(Cache, WorkingSetFitsNoCapacityMisses)
{
    // 8 KB, 4-way: footprint of 4 KB fits entirely.
    Cache c("t", {8192, 4, 64, ReplPolicy::lru}, Random(1));
    for (int round = 0; round < 3; ++round)
        for (Addr a = 0; a < 4096; a += 64)
            c.access(a, false);
    // First round all miss, later rounds all hit.
    EXPECT_EQ(c.stats().misses, 64u);
    EXPECT_EQ(c.stats().hits, 128u);
}

TEST(Cache, StreamOverCapacityAlwaysMisses)
{
    Cache c("t", {8192, 4, 64, ReplPolicy::lru}, Random(1));
    // 64 KB stream, 8x capacity: LRU gives zero reuse.
    for (int round = 0; round < 2; ++round)
        for (Addr a = 0; a < 65536; a += 64)
            c.access(a, false);
    EXPECT_EQ(c.stats().hits, 0u);
    EXPECT_EQ(c.stats().misses, 2048u);
}

TEST(Cache, MissRate)
{
    Cache c("t", smallGeom(), Random(1));
    c.access(0x40, false);
    c.access(0x40, false);
    c.access(0x40, false);
    c.access(0x80, false);
    EXPECT_NEAR(c.stats().missRate(), 0.5, 1e-12);
}

TEST(Cache, NonPowerOfTwoSetCount)
{
    // 3 sets via modulo indexing (192 B, 1 way).
    Cache c("t", {192, 1, 64, ReplPolicy::lru}, Random(1));
    c.access(0 * 64, false);
    c.access(1 * 64, false);
    c.access(2 * 64, false);
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(64));
    EXPECT_TRUE(c.contains(128));
    // 3*64 maps back to set 0, evicting addr 0.
    c.access(3 * 64, false);
    EXPECT_FALSE(c.contains(0));
}

TEST(Cache, TreePlruIsSane)
{
    Cache c("t", {2048, 4, 64, ReplPolicy::treePlru}, Random(1));
    // Fill one set (8 sets, so stride 512 hits set 0).
    for (int i = 0; i < 4; ++i)
        c.access(static_cast<Addr>(i) * 512, false);
    // Touch way 0's line, then insert a new line: way 0 survives.
    c.access(0, false);
    c.access(4 * 512, false);
    EXPECT_TRUE(c.contains(0));
    EXPECT_EQ(c.residentLines(), 4u);
}

TEST(Cache, RandomPolicyEvictsSomething)
{
    Cache c("t", {2048, 4, 64, ReplPolicy::random}, Random(7));
    for (int i = 0; i < 5; ++i)
        c.access(static_cast<Addr>(i) * 512, false);
    EXPECT_EQ(c.stats().evictions, 1u);
    EXPECT_EQ(c.residentLines(), 4u);
}

TEST(CacheDeath, BadGeometry)
{
    EXPECT_DEATH(Cache("t", {100, 2, 64, ReplPolicy::lru},
                       Random(1)),
                 "size");
}
