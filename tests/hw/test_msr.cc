#include <gtest/gtest.h>

#include "hw/msr.hh"

using namespace klebsim::hw;

namespace
{

class FakeDevice : public MsrDevice
{
  public:
    bool
    decodesMsr(std::uint32_t addr) const override
    {
        return addr >= 0x100 && addr < 0x110;
    }

    std::uint64_t
    readMsr(std::uint32_t addr) override
    {
        reads.push_back(addr);
        return 0xdead0000 + addr;
    }

    void
    writeMsr(std::uint32_t addr, std::uint64_t value) override
    {
        writes.emplace_back(addr, value);
    }

    std::vector<std::uint32_t> reads;
    std::vector<std::pair<std::uint32_t, std::uint64_t>> writes;
};

} // namespace

TEST(MsrFile, BackingStoreDefaultsToZero)
{
    MsrFile file;
    EXPECT_EQ(file.read(0x10), 0u);
}

TEST(MsrFile, BackingStoreRoundTrip)
{
    MsrFile file;
    file.write(0x10, 0x1234);
    EXPECT_EQ(file.read(0x10), 0x1234u);
}

TEST(MsrFile, DeviceRouting)
{
    MsrFile file;
    FakeDevice dev;
    file.attach(&dev);
    EXPECT_EQ(file.read(0x105), 0xdead0105u);
    file.write(0x106, 42);
    ASSERT_EQ(dev.writes.size(), 1u);
    EXPECT_EQ(dev.writes[0].first, 0x106u);
    // Outside the device range falls back to backing store.
    file.write(0x50, 9);
    EXPECT_EQ(file.read(0x50), 9u);
    EXPECT_EQ(dev.reads.size(), 1u);
}

TEST(MsrFile, LaterDeviceShadows)
{
    MsrFile file;
    FakeDevice a, b;
    file.attach(&a);
    file.attach(&b);
    file.read(0x100);
    EXPECT_TRUE(a.reads.empty());
    EXPECT_EQ(b.reads.size(), 1u);
}
