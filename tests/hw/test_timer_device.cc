#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "hw/timer_device.hh"

using namespace klebsim;
using namespace klebsim::ticks_literals;
using hw::TimerDevice;
using hw::TimerJitterModel;

TEST(TimerDevice, IdealTimerFiresExactly)
{
    sim::EventQueue eq;
    TimerDevice dev("t", eq, Random(1), TimerJitterModel::ideal());
    Tick fired_at = 0;
    dev.arm(100_us, [&] { fired_at = eq.curTick(); });
    EXPECT_TRUE(dev.armed());
    eq.runAll();
    EXPECT_EQ(fired_at, 100_us);
    EXPECT_FALSE(dev.armed());
    EXPECT_EQ(dev.lastLateness(), 0u);
}

TEST(TimerDevice, CancelPreventsFiring)
{
    sim::EventQueue eq;
    TimerDevice dev("t", eq, Random(1), TimerJitterModel::ideal());
    int fired = 0;
    dev.arm(100_us, [&] { ++fired; });
    dev.cancel();
    EXPECT_FALSE(dev.armed());
    eq.runAll();
    EXPECT_EQ(fired, 0);
}

TEST(TimerDevice, CancelIdleIsNoop)
{
    sim::EventQueue eq;
    TimerDevice dev("t", eq, Random(1));
    dev.cancel();
    EXPECT_FALSE(dev.armed());
}

TEST(TimerDevice, JitterIsNonNegativeAndBounded)
{
    sim::EventQueue eq;
    TimerJitterModel jm;
    jm.sigma = usToTicks(2);
    jm.maxLateness = usToTicks(10);
    jm.spikeProbability = 0.1;
    jm.spikeLateness = usToTicks(8);
    TimerDevice dev("t", eq, Random(42), jm);

    for (int i = 0; i < 200; ++i) {
        Tick expect = eq.curTick() + 100_us;
        Tick fired_at = 0;
        dev.arm(100_us, [&] { fired_at = eq.curTick(); });
        eq.runAll();
        ASSERT_GE(fired_at, expect);
        ASSERT_LE(fired_at - expect, jm.maxLateness);
    }
}

TEST(TimerDevice, JitterHasSpread)
{
    sim::EventQueue eq;
    TimerJitterModel jm;
    jm.sigma = usToTicks(2);
    jm.maxLateness = usToTicks(25);
    TimerDevice dev("t", eq, Random(42), jm);

    std::set<Tick> latenesses;
    for (int i = 0; i < 50; ++i) {
        dev.arm(100_us, [] {});
        eq.runAll();
        latenesses.insert(dev.lastLateness());
    }
    EXPECT_GT(latenesses.size(), 10u);
}

TEST(TimerDevice, RearmFromCallback)
{
    sim::EventQueue eq;
    TimerDevice dev("t", eq, Random(1), TimerJitterModel::ideal());
    int fired = 0;
    std::function<void()> cb = [&] {
        if (++fired < 3)
            dev.arm(10_us, cb);
    };
    dev.arm(10_us, cb);
    eq.runAll();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.curTick(), 30_us);
}

TEST(TimerDevice, CancelWhilePendingFromAnotherEvent)
{
    // Cancelling mid-flight (from an event that runs before the
    // expiry would) must suppress the fire and leave the device
    // immediately re-armable.
    sim::EventQueue eq;
    TimerDevice dev("t", eq, Random(1), TimerJitterModel::ideal());
    int fired = 0;
    dev.arm(100_us, [&] { ++fired; });
    eq.scheduleLambda(50_us, [&] {
        dev.cancel();
        EXPECT_FALSE(dev.armed());
        dev.arm(30_us, [&] { fired += 10; });
    });
    eq.runAll();
    EXPECT_EQ(fired, 10);
    EXPECT_EQ(eq.curTick(), 80_us);
}

TEST(TimerDevice, ReprogramAtExactFireTick)
{
    // Reprogramming at the exact tick the timer would fire, from an
    // event with higher (more negative) priority than the expiry,
    // must win the tie: the old deadline never fires and the new
    // one fires exactly once.
    sim::EventQueue eq;
    TimerDevice dev("t", eq, Random(1), TimerJitterModel::ideal());
    int old_fired = 0;
    int new_fired = 0;
    dev.arm(100_us, [&] { ++old_fired; });
    eq.scheduleLambda(
        100_us,
        [&] {
            dev.cancel();
            dev.arm(40_us, [&] { ++new_fired; });
        },
        sim::Event::timerPriority - 1, "reprogram");
    eq.runAll();
    EXPECT_EQ(old_fired, 0);
    EXPECT_EQ(new_fired, 1);
    EXPECT_EQ(eq.curTick(), 140_us);
}

TEST(TimerDevice, FaultHookAddsUncappedLateness)
{
    // The fault hook's extra lateness stacks on top of the jitter
    // draw and is exempt from maxLateness (a missed tick can slide
    // a whole period).
    sim::EventQueue eq;
    TimerJitterModel jm = TimerJitterModel::ideal();
    jm.maxLateness = usToTicks(5);
    TimerDevice dev("t", eq, Random(1), jm);
    std::vector<Tick> seen_delays;
    dev.setFaultHook([&](Tick delay) {
        seen_delays.push_back(delay);
        return delay; // miss by one full period
    });

    Tick fired_at = 0;
    dev.arm(100_us, [&] { fired_at = eq.curTick(); });
    eq.runAll();
    EXPECT_EQ(fired_at, 200_us);
    EXPECT_EQ(dev.lastLateness(), 100_us);
    ASSERT_EQ(seen_delays.size(), 1u);
    EXPECT_EQ(seen_delays[0], 100_us);

    // Clearing the hook restores the ideal timer.
    dev.setFaultHook(nullptr);
    dev.arm(100_us, [&] { fired_at = eq.curTick(); });
    eq.runAll();
    EXPECT_EQ(fired_at, 300_us);
    EXPECT_EQ(dev.lastLateness(), 0u);
}

TEST(TimerDeviceDeath, DoubleArm)
{
    sim::EventQueue eq;
    TimerDevice dev("t", eq, Random(1));
    dev.arm(10_us, [] {});
    EXPECT_DEATH(dev.arm(10_us, [] {}), "armed twice");
    dev.cancel();
}

TEST(TimerDeviceDeath, ZeroDelay)
{
    sim::EventQueue eq;
    TimerDevice dev("t", eq, Random(1));
    EXPECT_DEATH(dev.arm(0, [] {}), "zero delay");
}
