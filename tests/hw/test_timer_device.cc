#include <gtest/gtest.h>

#include "hw/timer_device.hh"

using namespace klebsim;
using namespace klebsim::ticks_literals;
using hw::TimerDevice;
using hw::TimerJitterModel;

TEST(TimerDevice, IdealTimerFiresExactly)
{
    sim::EventQueue eq;
    TimerDevice dev("t", eq, Random(1), TimerJitterModel::ideal());
    Tick fired_at = 0;
    dev.arm(100_us, [&] { fired_at = eq.curTick(); });
    EXPECT_TRUE(dev.armed());
    eq.runAll();
    EXPECT_EQ(fired_at, 100_us);
    EXPECT_FALSE(dev.armed());
    EXPECT_EQ(dev.lastLateness(), 0u);
}

TEST(TimerDevice, CancelPreventsFiring)
{
    sim::EventQueue eq;
    TimerDevice dev("t", eq, Random(1), TimerJitterModel::ideal());
    int fired = 0;
    dev.arm(100_us, [&] { ++fired; });
    dev.cancel();
    EXPECT_FALSE(dev.armed());
    eq.runAll();
    EXPECT_EQ(fired, 0);
}

TEST(TimerDevice, CancelIdleIsNoop)
{
    sim::EventQueue eq;
    TimerDevice dev("t", eq, Random(1));
    dev.cancel();
    EXPECT_FALSE(dev.armed());
}

TEST(TimerDevice, JitterIsNonNegativeAndBounded)
{
    sim::EventQueue eq;
    TimerJitterModel jm;
    jm.sigma = usToTicks(2);
    jm.maxLateness = usToTicks(10);
    jm.spikeProbability = 0.1;
    jm.spikeLateness = usToTicks(8);
    TimerDevice dev("t", eq, Random(42), jm);

    for (int i = 0; i < 200; ++i) {
        Tick expect = eq.curTick() + 100_us;
        Tick fired_at = 0;
        dev.arm(100_us, [&] { fired_at = eq.curTick(); });
        eq.runAll();
        ASSERT_GE(fired_at, expect);
        ASSERT_LE(fired_at - expect, jm.maxLateness);
    }
}

TEST(TimerDevice, JitterHasSpread)
{
    sim::EventQueue eq;
    TimerJitterModel jm;
    jm.sigma = usToTicks(2);
    jm.maxLateness = usToTicks(25);
    TimerDevice dev("t", eq, Random(42), jm);

    std::set<Tick> latenesses;
    for (int i = 0; i < 50; ++i) {
        dev.arm(100_us, [] {});
        eq.runAll();
        latenesses.insert(dev.lastLateness());
    }
    EXPECT_GT(latenesses.size(), 10u);
}

TEST(TimerDevice, RearmFromCallback)
{
    sim::EventQueue eq;
    TimerDevice dev("t", eq, Random(1), TimerJitterModel::ideal());
    int fired = 0;
    std::function<void()> cb = [&] {
        if (++fired < 3)
            dev.arm(10_us, cb);
    };
    dev.arm(10_us, cb);
    eq.runAll();
    EXPECT_EQ(fired, 3);
    EXPECT_EQ(eq.curTick(), 30_us);
}

TEST(TimerDeviceDeath, DoubleArm)
{
    sim::EventQueue eq;
    TimerDevice dev("t", eq, Random(1));
    dev.arm(10_us, [] {});
    EXPECT_DEATH(dev.arm(10_us, [] {}), "armed twice");
    dev.cancel();
}
