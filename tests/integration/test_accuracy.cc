#include <gtest/gtest.h>

#include "stats/summary.hh"
#include "tools/harness.hh"
#include "workload/matmul.hh"

using namespace klebsim;
using namespace klebsim::tools;

namespace
{

/** A scaled-down matmul run config shared by accuracy tests. */
RunConfig
matmulConfig(ToolKind tool)
{
    RunConfig cfg;
    cfg.tool = tool;
    cfg.period = msToTicks(10);
    cfg.expectedLifetime = msToTicks(80);
    cfg.expectedInstructions = 270000000;
    cfg.workloadFactory = [](Addr base, Random rng) {
        return workload::makeMatMulLoop({320}, base, rng);
    };
    return cfg;
}

} // namespace

/**
 * Fig. 9: tool-reported architectural event counts agree to <0.3 %
 * across tools on the same deterministic program (same seed).
 */
TEST(Accuracy, ArchitecturalCountsAgreeAcrossTools)
{
    RunResult kleb = runOnce(matmulConfig(ToolKind::kleb));
    RunResult stat = runOnce(matmulConfig(ToolKind::perfStat));
    RunResult record = runOnce(matmulConfig(ToolKind::perfRecord));

    ASSERT_EQ(kleb.totals.size(), 4u);
    ASSERT_EQ(stat.totals.size(), 4u);
    ASSERT_EQ(record.totals.size(), 4u);

    for (std::size_t i = 0; i < 4; ++i) {
        double kleb_v = static_cast<double>(kleb.totals[i]);
        double stat_v = static_cast<double>(stat.totals[i]);
        double rec_v = static_cast<double>(record.totals[i]);
        ASSERT_GT(stat_v, 0.0);
        // K-LEB vs perf stat: both take exact final snapshots.
        EXPECT_LT(stats::pctDiff(kleb_v, stat_v), 0.01)
            << "event " << i;
        // perf record estimates from its last sample: small error,
        // still below the paper's 0.3 % bound.
        EXPECT_LT(stats::pctDiff(rec_v, kleb_v), 0.3)
            << "event " << i;
    }
}

TEST(Accuracy, KLebMatchesGroundTruthUserCounts)
{
    RunResult r = runOnce(matmulConfig(ToolKind::kleb));
    // The matmul workload runs entirely in user mode, so the
    // tool-reported inst count equals the context's total.
    EXPECT_EQ(r.totals[0],
              at(r.trueTotals, hw::HwEvent::instRetired));
}

TEST(Accuracy, SeriesDeltasSumToTotals)
{
    RunResult r = runOnce(matmulConfig(ToolKind::kleb));
    ASSERT_TRUE(r.series.has_value());
    const stats::TimeSeries &s = *r.series;
    // Cumulative series: last value equals reported total.
    auto inst = s.channel(0);
    ASSERT_FALSE(inst.empty());
    EXPECT_EQ(static_cast<std::uint64_t>(inst.back()),
              r.totals[0]);
}

/**
 * Determinism: identical seeds give identical results, different
 * seeds perturb microarchitectural (but not architectural) counts.
 */
TEST(Accuracy, RunsAreReproducible)
{
    RunResult a = runOnce(matmulConfig(ToolKind::kleb));
    RunResult b = runOnce(matmulConfig(ToolKind::kleb));
    EXPECT_EQ(a.lifetime, b.lifetime);
    EXPECT_EQ(a.totals, b.totals);
    EXPECT_EQ(a.samples, b.samples);
}

TEST(Accuracy, SeedChangesMicroarchButNotArch)
{
    RunConfig cfg = matmulConfig(ToolKind::none);
    RunResult a = runOnce(cfg);
    cfg.seed = 99;
    RunResult b = runOnce(cfg);
    // Architectural counts are seed-independent...
    EXPECT_EQ(at(a.trueTotals, hw::HwEvent::instRetired),
              at(b.trueTotals, hw::HwEvent::instRetired));
    EXPECT_EQ(at(a.trueTotals, hw::HwEvent::loadRetired),
              at(b.trueTotals, hw::HwEvent::loadRetired));
    // ...while cache behaviour varies with the address streams.
    EXPECT_NE(at(a.trueTotals, hw::HwEvent::llcMiss),
              at(b.trueTotals, hw::HwEvent::llcMiss));
}
