#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "kleb/session.hh"
#include "tools/perf.hh"
#include "workload/linpack.hh"
#include "workload/matmul.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

} // namespace

/**
 * The quickstart flow: monitor a real (scaled) workload with the
 * public API and sanity-check everything that comes out.
 */
TEST(EndToEnd, MonitorLinpack)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    workload::LinpackParams params;
    params.n = 400;
    params.trials = 2;
    params.blocksPerTrial = 4;
    auto linpack = workload::makeLinpack(params, 0x100000000ULL,
                                         sys.forkRng(1));
    Process *target =
        sys.kernel().createWorkload("linpack", linpack.get(), 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired, hw::HwEvent::arithMul,
                   hw::HwEvent::loadRetired,
                   hw::HwEvent::storeRetired};
    opts.period = 200_us;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    ASSERT_EQ(target->state(), ProcState::zombie);
    ASSERT_TRUE(session.finished());
    stats::TimeSeries deltas = session.deltaSeries();
    ASSERT_GT(deltas.size(), 10u);

    // Fig. 4's signature: a store-heavy setup phase before the
    // mul-heavy compute phases.  Verify MUL activity is
    // concentrated later than the early samples.
    auto muls = deltas.channel("ARITH_MUL");
    double early = 0, late = 0;
    for (std::size_t i = 0; i < muls.size() / 4; ++i)
        early += muls[i];
    for (std::size_t i = muls.size() / 4; i < muls.size(); ++i)
        late += muls[i];
    EXPECT_GT(late, early);

    // Totals match ground truth exactly.
    const hw::EventVector &truth =
        target->execContext()->totalEvents();
    hw::EventVector reported = session.finalTotals();
    // Linpack's init phase runs at kernel priv; user-mode counters
    // see everything else.
    EXPECT_LE(at(reported, hw::HwEvent::instRetired),
              at(truth, hw::HwEvent::instRetired));
    EXPECT_GT(at(reported, hw::HwEvent::instRetired),
              at(truth, hw::HwEvent::instRetired) * 9 / 10);
}

TEST(EndToEnd, HundredMicrosecondSampling)
{
    System sys(hw::MachineConfig::corei7_920(), 2, quietCosts());
    workload::MatMulParams params{260}; // ~40 ms of work
    auto mm = workload::makeMatMulLoop(params, 0x100000000ULL,
                                       sys.forkRng(2));
    Process *target =
        sys.kernel().createWorkload("matmul", mm.get(), 0);

    kleb::Session::Options opts;
    opts.period = 100_us; // the paper's headline rate
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    ASSERT_TRUE(session.finished());
    stats::TimeSeries series = session.series();
    ASSERT_GT(series.size(), 100u);
    // Mean sampling interval within 15% of 100 us despite jitter
    // and scheduling.
    EXPECT_NEAR(series.meanInterval(),
                static_cast<double>(100_us),
                static_cast<double>(15_us));
}

TEST(EndToEnd, SamplingRate100xFasterThanPerfFloor)
{
    // The paper's headline: 100 us K-LEB vs 10 ms perf floor.
    EXPECT_EQ(klebsim::tools::PerfStatSession::minInterval,
              10_ms);
    EXPECT_EQ(10_ms / 100_us, 100u);
}
