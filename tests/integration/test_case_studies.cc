#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "kleb/session.hh"
#include "workload/docker.hh"
#include "workload/meltdown.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

/** Monitor one (scaled) docker image with K-LEB; return its MPKI. */
double
dockerMpki(const std::string &image, std::uint64_t instructions)
{
    System sys(hw::MachineConfig::corei7_920(), 11, quietCosts());
    workload::DockerImageSpec spec = workload::dockerImage(image);
    spec.instructions = instructions;
    auto container = workload::launchContainer(
        sys.kernel(), spec, 0, 0x200000000ULL, sys.forkRng(3));

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired, hw::HwEvent::llcMiss};
    opts.period = 1_ms;
    opts.traceChildren = true;
    opts.controllerCore = 1;
    kleb::Session session(sys, opts);
    // Monitor the shim; the entry process is traced as descendant.
    session.monitor(container->shim, false);
    sys.run();

    hw::EventVector totals = session.finalTotals();
    return stats::mpki(
        static_cast<double>(at(totals, hw::HwEvent::llcMiss)),
        static_cast<double>(at(totals, hw::HwEvent::instRetired)));
}

} // namespace

/**
 * Case study IV-B: container workloads characterized *through the
 * shim PID* (multi-PID tracing), classified by MPKI.
 */
TEST(CaseStudies, DockerClassificationViaShim)
{
    double python = dockerMpki("python", 30000000);
    double apache = dockerMpki("apache", 30000000);
    EXPECT_LT(python, workload::memoryIntensiveMpki);
    EXPECT_GT(apache, workload::memoryIntensiveMpki);
}

/**
 * Case study IV-C, Fig. 7: at 100 us sampling the attack's point
 * of onset is visible in the time series; a 10 ms tool would see
 * at most one sample for the clean program.
 */
TEST(CaseStudies, MeltdownVisibleInTimeSeries)
{
    System sys(hw::MachineConfig::corei7_920(), 13, quietCosts());
    workload::MeltdownParams params;
    params.retriesPerByte = 40;
    workload::MeltdownWorkload attack(params, 0x300000000ULL,
                                      sys.forkRng(5));
    Process *target =
        sys.kernel().createWorkload("meltdown", &attack, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired,
                   hw::HwEvent::llcReference,
                   hw::HwEvent::llcMiss};
    opts.period = 100_us;
    opts.controllerCore = 1;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    ASSERT_TRUE(session.finished());
    EXPECT_EQ(attack.recoveredSecret(), params.secret);

    stats::TimeSeries deltas = session.deltaSeries();
    ASSERT_GT(deltas.size(), 20u);

    // The paper detects the attack through the per-interval
    // misses-to-instructions ratio (MPKI), which spikes during the
    // Flush+Reload burst relative to the clean prologue.
    auto misses = deltas.channel("LLC_MISSES");
    auto inst = deltas.channel("INST_RETIRED");
    ASSERT_GT(misses.size(), 12u);
    std::vector<double> interval_mpki;
    for (std::size_t i = 0; i < misses.size(); ++i)
        interval_mpki.push_back(
            stats::mpki(misses[i], std::max(inst[i], 1.0)));
    double prologue_avg = 0;
    for (std::size_t i = 1; i <= 8; ++i)
        prologue_avg += interval_mpki[i];
    prologue_avg /= 8.0;
    double peak = *std::max_element(interval_mpki.begin(),
                                    interval_mpki.end());
    EXPECT_GT(peak, 3.0 * (prologue_avg + 0.5));
}

TEST(CaseStudies, CleanProgramTooFastForPerfTimer)
{
    System sys(hw::MachineConfig::corei7_920(), 14, quietCosts());
    auto printer =
        workload::makeSecretPrinter(0x300000000ULL,
                                    sys.forkRng(6));
    Process *target =
        sys.kernel().createWorkload("printer", printer.get(), 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::llcReference,
                   hw::HwEvent::llcMiss};
    opts.period = 100_us;
    opts.controllerCore = 1;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run();

    // <10 ms lifetime: a 10 ms timer yields at most 1 tick, K-LEB
    // at 100 us yields a real series.
    EXPECT_LT(ticksToMs(target->lifetime()), 10.0);
    EXPECT_GT(session.samples().size(), 30u);
}
