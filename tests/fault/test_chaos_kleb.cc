#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "analysis/invariants.hh"
#include "fault/fault_injector.hh"
#include "kernel/system.hh"
#include "kleb/session.hh"
#include "tools/harness.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeChunk;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

/** Everything a chaos scenario can be asserted on afterwards. */
struct ChaosOutcome
{
    std::vector<kleb::Sample> samples;
    kleb::KLebStatus status{};
    stats::LossCounts losses{};
    hw::EventVector finalTotals{};
    bool finished = false;
    bool aborted = false;
    bool loadFailed = false;
    int loadAttempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t targetInstructions = 0;
    bool targetDone = false;
    Tick targetExit = 0;
    std::string injections;
    std::vector<std::string> invariantViolations;
};

/**
 * Run one 60M-instruction workload under a K-LEB session with the
 * given fault spec and seed, invariant-checked, and return the full
 * outcome.  `mutate` can adjust the session options (buffer size,
 * events, load retries) before the session is built.
 */
ChaosOutcome
runChaos(const std::string &spec, std::uint64_t seed,
         const std::function<void(kleb::Session::Options &)> &mutate
             = nullptr,
         int mega_instructions = 60)
{
    System sys(hw::MachineConfig::corei7_920(), seed, quietCosts());
    analysis::InvariantChecker checker;
    checker.attachQueue(sys.eq());
    checker.attachKernel(sys.kernel());

    fault::FaultPlan plan;
    std::string err;
    EXPECT_TRUE(fault::FaultPlan::parse(spec, &plan, &err)) << err;
    fault::FaultInjector injector(plan, seed);
    injector.attach(sys);

    FixedWorkSource src =
        computeSource(mega_instructions, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired,
                   hw::HwEvent::branchRetired};
    opts.period = 100_us;
    if (mutate)
        mutate(opts);
    opts.controllerTuning.drainStallHook = injector.readerStallHook();
    kleb::Session session(sys, opts);
    session.monitor(target);
    injector.scheduleTargetCrash(sys, target);

    sys.run(secToTicks(5.0));

    ChaosOutcome out;
    out.samples = session.samples();
    out.status = session.status();
    out.losses = session.losses();
    out.finalTotals = session.finalTotals();
    out.finished = session.finished();
    out.aborted = session.aborted();
    out.loadFailed = session.loadFailed();
    out.loadAttempts = session.loadAttempts();
    out.retries = session.retries();
    out.targetDone = target->state() == ProcState::zombie;
    out.targetExit = target->exitTick();
    out.targetInstructions =
        target->execContext()->instructionsRetired();
    out.injections = injector.injectionSummary();
    checker.checkSampleLog(out.samples);
    out.invariantViolations = checker.violations();
    return out;
}

std::vector<Tick>
timestamps(const std::vector<kleb::Sample> &log)
{
    std::vector<Tick> out;
    out.reserve(log.size());
    for (const kleb::Sample &s : log)
        out.push_back(s.timestamp);
    return out;
}

bool
sameLog(const std::vector<kleb::Sample> &a,
        const std::vector<kleb::Sample> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].timestamp != b[i].timestamp ||
            a[i].cause != b[i].cause ||
            a[i].numEvents != b[i].numEvents ||
            a[i].counts != b[i].counts)
            return false;
    }
    return true;
}

} // namespace

/**
 * Chaos suite: the deterministic fault plans from src/fault driven
 * through a full K-LEB session.  Every scenario must end with the
 * workload complete, no invariant violations, and the degradation
 * the plan provokes accounted for in the session's status.
 */
TEST(ChaosKLeb, InertPlanMatchesNoInjector)
{
    // An attached-but-empty plan must be byte-identical to not
    // constructing an injector at all (zero-cost when off).
    ChaosOutcome with_injector = runChaos("", 77);

    System sys(hw::MachineConfig::corei7_920(), 77, quietCosts());
    FixedWorkSource src = computeSource(60, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);
    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired,
                   hw::HwEvent::branchRetired};
    opts.period = 100_us;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run(secToTicks(5.0));

    EXPECT_TRUE(sameLog(with_injector.samples, session.samples()));
    EXPECT_EQ(with_injector.status.samplesRecorded,
              session.status().samplesRecorded);
    EXPECT_EQ(with_injector.injections, "none");
    EXPECT_TRUE(with_injector.invariantViolations.empty())
        << with_injector.invariantViolations.front();
}

TEST(ChaosKLeb, CounterWrapCorrected)
{
    // 60M instructions through a 24-bit counter (wraps every ~16.7M)
    // must produce the exact totals of the full-width run: the
    // module's overflow-aware delta logic reconstructs the wrapped
    // bits.  Narrowing the width draws no randomness and costs no
    // simulated time, so even the sample timestamps line up.
    ChaosOutcome clean = runChaos("", 91);
    ChaosOutcome narrow = runChaos("pmu.width=24", 91);

    EXPECT_GT(narrow.status.counterWraps, 0u);
    EXPECT_EQ(clean.status.counterWraps, 0u);
    EXPECT_EQ(timestamps(narrow.samples), timestamps(clean.samples));
    EXPECT_TRUE(sameLog(narrow.samples, clean.samples));
    EXPECT_EQ(at(narrow.finalTotals, hw::HwEvent::instRetired),
              at(clean.finalTotals, hw::HwEvent::instRetired));
    EXPECT_EQ(at(narrow.finalTotals, hw::HwEvent::instRetired),
              60000000u);
    EXPECT_TRUE(narrow.invariantViolations.empty())
        << narrow.invariantViolations.front();
}

TEST(ChaosKLeb, TransientChardevFailuresRetried)
{
    // ~25% of ioctls and reads fail with EAGAIN; the controller's
    // bounded retry-with-backoff must ride through every one and
    // still deliver the complete, monotone sample log.
    ChaosOutcome out =
        runChaos("seed=3;ioctl.fail=0.25;read.fail=0.25", 13);

    EXPECT_TRUE(out.finished);
    EXPECT_FALSE(out.aborted);
    EXPECT_GT(out.retries, 0u);
    EXPECT_TRUE(out.targetDone);
    EXPECT_EQ(out.targetInstructions, 60000000u);
    ASSERT_FALSE(out.samples.empty());
    EXPECT_EQ(out.samples.back().cause, kleb::SampleCause::final);
    EXPECT_EQ(at(out.finalTotals, hw::HwEvent::instRetired),
              60000000u);
    EXPECT_EQ(out.status.samplesDropped, 0u);
    EXPECT_NE(out.injections.find("ioctl.fail="), std::string::npos);
    EXPECT_TRUE(out.invariantViolations.empty())
        << out.invariantViolations.front();
}

TEST(ChaosKLeb, ExhaustedRetriesAbortWithDropsAccounted)
{
    // Every read fails: the drain loop exhausts its retry budget and
    // the controller aborts.  With the reader gone the ring buffer
    // fills and pauses; the target's exit snapshot then finds it
    // full, and that loss must show up in the drop accounting.
    auto shrink = [](kleb::Session::Options &o) {
        o.bufferCapacity = 32;
    };
    ChaosOutcome out = runChaos("read.fail=1.0", 21, shrink);

    EXPECT_TRUE(out.aborted);
    EXPECT_TRUE(out.finished);
    EXPECT_TRUE(out.targetDone);
    EXPECT_EQ(out.targetInstructions, 60000000u);
    EXPECT_GT(out.status.pauseEpisodes, 0u);
    EXPECT_GE(out.status.samplesDropped, 1u);
    EXPECT_GE(out.losses.dropped, 1u);
    EXPECT_GT(out.losses.lossFraction(), 0.0);
    EXPECT_TRUE(out.invariantViolations.empty())
        << out.invariantViolations.front();
}

TEST(ChaosKLeb, GenerousRetryBudgetSaturatesBackoff)
{
    // A maxRetries tuning past the shift width used to left-shift
    // the backoff by up to maxRetries - 1 (UB at 64, and a wrap to
    // comically short sleeps before that).  The clamped, saturating
    // backoff must instead walk all 80 attempts with bounded sleeps
    // and reach the abort path with clean retry state: the
    // controller still flushes and finishes, and the retry counter
    // records every attempt exactly once.
    auto generous = [](kleb::Session::Options &o) {
        o.bufferCapacity = 32;
        o.controllerTuning.maxRetries = 80;
        o.controllerTuning.retryBackoff = usToTicks(1);
    };
    ChaosOutcome out = runChaos("read.fail=1.0", 33, generous);

    EXPECT_TRUE(out.aborted);
    EXPECT_TRUE(out.finished);
    EXPECT_TRUE(out.targetDone);
    EXPECT_EQ(out.retries, 80u);
    EXPECT_TRUE(out.invariantViolations.empty())
        << out.invariantViolations.front();
}

TEST(ChaosKLeb, ReaderStallDropsFinalSnapshot)
{
    // Probe run: a hard reader stall keeps the controller from ever
    // draining, so the ring buffer (32 deep) pauses at its 32nd
    // sample.  The pause wakes the controller, but the drain takes
    // nonzero simulated time to land.
    auto shrink = [](kleb::Session::Options &o) {
        o.bufferCapacity = 32;
    };
    ChaosOutcome probe = runChaos("reader.stall=200ms", 29, shrink);
    EXPECT_GT(probe.status.pauseEpisodes, 0u);
    ASSERT_GE(probe.samples.size(), 32u);
    Tick pause_tick = probe.samples[31].timestamp;

    // Crash the target at exactly that tick: the kill dispatches
    // after the buffer-filling timer sample but before the woken
    // controller gets to drain, so the exit snapshot meets a full
    // buffer and is dropped -- and the drop is counted.  The 32
    // buffered samples still flush afterwards.
    ChaosOutcome out = runChaos(
        "reader.stall=200ms;target.crash=" +
            std::to_string(pause_tick),
        29, shrink);

    EXPECT_TRUE(out.finished);
    EXPECT_TRUE(out.targetDone);
    EXPECT_LT(out.targetInstructions, 60000000u);
    EXPECT_GE(out.status.samplesDropped, 1u);
    EXPECT_GE(out.losses.dropped, 1u);
    EXPECT_GE(out.samples.size(), 32u);
    EXPECT_NE(out.injections.find("reader.stall="),
              std::string::npos);
    EXPECT_TRUE(out.invariantViolations.empty())
        << out.invariantViolations.front();
}

TEST(ChaosKLeb, TargetCrashFlushesPartialLog)
{
    ChaosOutcome full = runChaos("", 37);
    ChaosOutcome out = runChaos("target.crash=3ms", 37);

    EXPECT_TRUE(out.finished);
    EXPECT_FALSE(out.aborted);
    EXPECT_TRUE(out.targetDone);
    EXPECT_GE(out.targetExit, 3_ms);
    EXPECT_LT(out.targetInstructions, 60000000u);
    ASSERT_FALSE(out.samples.empty());
    EXPECT_EQ(out.samples.back().cause, kleb::SampleCause::final);
    EXPECT_LT(out.samples.size(), full.samples.size());
    EXPECT_FALSE(out.status.monitoring);
    EXPECT_FALSE(out.status.targetAlive);
    EXPECT_EQ(out.status.pendingSamples, 0u);
    EXPECT_NE(out.injections.find("target.crash=1"),
              std::string::npos);
    EXPECT_TRUE(out.invariantViolations.empty())
        << out.invariantViolations.front();
}

TEST(ChaosKLeb, ModuleLoadFailureRetriedThenFine)
{
    ChaosOutcome out = runChaos("module.initfail=1", 51);

    EXPECT_EQ(out.loadAttempts, 2);
    EXPECT_FALSE(out.loadFailed);
    EXPECT_TRUE(out.finished);
    EXPECT_EQ(at(out.finalTotals, hw::HwEvent::instRetired),
              60000000u);
    EXPECT_NE(out.injections.find("module.initfail=1"),
              std::string::npos);
}

TEST(ChaosKLeb, ModuleLoadFailureDegradesToUnmonitored)
{
    // More vetoes than retries: the session gives up on the module
    // but still runs the workload, unmonitored, to completion.
    auto one_retry = [](kleb::Session::Options &o) {
        o.loadRetries = 1;
    };
    ChaosOutcome out =
        runChaos("module.initfail=5", 53, one_retry);

    EXPECT_TRUE(out.loadFailed);
    EXPECT_EQ(out.loadAttempts, 2);
    EXPECT_TRUE(out.finished);
    EXPECT_TRUE(out.targetDone);
    EXPECT_EQ(out.targetInstructions, 60000000u);
    EXPECT_TRUE(out.samples.empty());
    EXPECT_FALSE(out.status.monitoring);
    EXPECT_TRUE(out.invariantViolations.empty())
        << out.invariantViolations.front();
}

TEST(ChaosKLeb, ModuleUnloadMidSessionAborts)
{
    // rmmod under a live session: the controller's next chardev op
    // returns ENXIO and it aborts; the session's status() keeps
    // working off the snapshot taken at unload time.
    System sys(hw::MachineConfig::corei7_920(), 57, quietCosts());
    analysis::InvariantChecker checker;
    checker.attachQueue(sys.eq());
    checker.attachKernel(sys.kernel());

    FixedWorkSource src = computeSource(60, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);
    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired};
    opts.period = 100_us;
    kleb::Session session(sys, opts);
    session.monitor(target);

    sys.run(3_ms);
    ASSERT_TRUE(session.status().monitoring);
    sys.kernel().unloadModule(session.devPath());
    EXPECT_EQ(session.module(), nullptr);
    kleb::KLebStatus snap = session.status();
    EXPECT_GT(snap.samplesRecorded, 0u);

    sys.run();
    EXPECT_TRUE(session.aborted());
    EXPECT_TRUE(session.finished());
    EXPECT_EQ(target->state(), ProcState::zombie);
    EXPECT_EQ(target->execContext()->instructionsRetired(),
              60000000u);
    // Status stays answerable (and frozen) after the unload.
    EXPECT_EQ(session.status().samplesRecorded,
              snap.samplesRecorded);
    EXPECT_TRUE(checker.ok()) << checker.report();
}

TEST(ChaosKLeb, SameSeedReplaysBitForBit)
{
    const std::string spec =
        "seed=5;timer.miss=0.05;timer.spike=0.1;timer.spike.us=40;"
        "pmu.width=28;ioctl.fail=0.2;read.fail=0.2";
    ChaosOutcome a = runChaos(spec, 101);
    ChaosOutcome b = runChaos(spec, 101);

    EXPECT_TRUE(sameLog(a.samples, b.samples));
    EXPECT_EQ(a.injections, b.injections);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.status.samplesRecorded, b.status.samplesRecorded);
    EXPECT_EQ(a.status.counterWraps, b.status.counterWraps);
    EXPECT_EQ(a.targetExit, b.targetExit);

    // A different plan seed reshuffles the injection schedule.
    ChaosOutcome c = runChaos("seed=6;" + spec.substr(7), 101);
    EXPECT_FALSE(sameLog(a.samples, c.samples) &&
                 a.injections == c.injections);
}

TEST(ChaosKLeb, HarnessRunsFaultSpec)
{
    // The tool harness plumbs RunConfig::faultSpec end to end: a
    // narrow-width faulted run reports the same totals as the clean
    // run (wraps corrected) plus a nonzero injection count.
    tools::RunConfig cfg;
    cfg.tool = tools::ToolKind::kleb;
    cfg.costs = quietCosts();
    cfg.period = msToTicks(1);
    cfg.expectedLifetime = msToTicks(37);
    cfg.expectedInstructions = 200000000;
    cfg.workloadFactory = [](Addr, Random) {
        std::vector<hw::WorkChunk> chunks(
            200, computeChunk(1000000, 2.0));
        return std::make_unique<FixedWorkSource>(std::move(chunks));
    };

    tools::RunResult clean = tools::runOnce(cfg);
    cfg.faultSpec = "pmu.width=24";
    tools::RunResult faulted = tools::runOnce(cfg);

    ASSERT_TRUE(clean.supported);
    ASSERT_TRUE(faulted.supported);
    EXPECT_EQ(clean.faultsInjected, 0u);
    EXPECT_GT(faulted.faultsInjected, 0u);
    EXPECT_GT(faulted.klebStatus.counterWraps, 0u);
    EXPECT_FALSE(faulted.klebAborted);
    ASSERT_EQ(faulted.totals.size(), clean.totals.size());
    EXPECT_EQ(faulted.totals, clean.totals);
    EXPECT_EQ(faulted.klebLoadAttempts, 1);
}
