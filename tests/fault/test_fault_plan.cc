#include <gtest/gtest.h>

#include <string>

#include "fault/fault_plan.hh"

using namespace klebsim;
using namespace klebsim::ticks_literals;
using fault::FaultPlan;
using fault::FaultPoint;
using fault::numFaultPoints;

TEST(FaultPlan, DefaultIsInert)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.active());
    EXPECT_FALSE(plan.timerFaultsActive());
    EXPECT_FALSE(plan.chardevFaultsActive());
    EXPECT_FALSE(plan.readerStallActive());
    EXPECT_EQ(plan.str(), "");
}

TEST(FaultPlan, EmptySpecParsesInert)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("", &plan));
    EXPECT_FALSE(plan.active());
    ASSERT_TRUE(FaultPlan::parse("  ;  ; ", &plan));
    EXPECT_FALSE(plan.active());
}

TEST(FaultPlan, ParsesEveryKey)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse(
        "seed=7;timer.miss=0.1;timer.spike=0.05;timer.spike.us=80;"
        "pmu.width=24;ioctl.fail=0.2;read.fail=0.3;"
        "reader.stall=5ms;reader.stall.p=0.5;module.initfail=2;"
        "target.crash=2ms",
        &plan));
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_DOUBLE_EQ(plan.timerMissProb, 0.1);
    EXPECT_DOUBLE_EQ(plan.timerSpikeProb, 0.05);
    EXPECT_EQ(plan.timerSpikeLateness, 80_us);
    EXPECT_EQ(plan.counterWidth, 24);
    EXPECT_DOUBLE_EQ(plan.ioctlFailProb, 0.2);
    EXPECT_DOUBLE_EQ(plan.readFailProb, 0.3);
    EXPECT_EQ(plan.readerStall, 5_ms);
    EXPECT_DOUBLE_EQ(plan.readerStallProb, 0.5);
    EXPECT_EQ(plan.moduleInitFails, 2);
    EXPECT_EQ(plan.targetCrashAt, 2_ms);
    EXPECT_TRUE(plan.active());
}

TEST(FaultPlan, AdaptiveKeysParseAndRoundTrip)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse(
        "module.set_period=0.4;reprogram.crash=2", &plan));
    EXPECT_DOUBLE_EQ(plan.setPeriodFailProb, 0.4);
    EXPECT_EQ(plan.reprogramCrashNth, 2);
    EXPECT_TRUE(plan.active());
    FaultPlan again;
    ASSERT_TRUE(FaultPlan::parse(plan.str(), &again));
    EXPECT_EQ(again.str(), plan.str());

    std::string err;
    EXPECT_FALSE(
        FaultPlan::parse("module.set_period=1.5", &plan, &err));
    EXPECT_FALSE(
        FaultPlan::parse("reprogram.crash=-1", &plan, &err));
}

TEST(FaultPlan, WhitespaceTolerant)
{
    FaultPlan plan;
    ASSERT_TRUE(
        FaultPlan::parse(" pmu.width=16 ; ioctl.fail=0.5 ", &plan));
    EXPECT_EQ(plan.counterWidth, 16);
    EXPECT_DOUBLE_EQ(plan.ioctlFailProb, 0.5);
}

TEST(FaultPlan, DurationUnits)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("reader.stall=250us", &plan));
    EXPECT_EQ(plan.readerStall, 250_us);
    ASSERT_TRUE(FaultPlan::parse("reader.stall=40ns", &plan));
    EXPECT_EQ(plan.readerStall, 40_ns);
    ASSERT_TRUE(FaultPlan::parse("target.crash=1s", &plan));
    EXPECT_EQ(plan.targetCrashAt, secToTicks(1.0));
    // Bare numbers are ticks.
    ASSERT_TRUE(FaultPlan::parse("reader.stall=12345", &plan));
    EXPECT_EQ(plan.readerStall, 12345u);
}

TEST(FaultPlan, RejectsBadInput)
{
    FaultPlan plan;
    std::string err;
    EXPECT_FALSE(FaultPlan::parse("bogus.key=1", &plan, &err));
    EXPECT_NE(err.find("bogus.key"), std::string::npos);
    EXPECT_FALSE(FaultPlan::parse("timer.miss=1.5", &plan, &err));
    EXPECT_FALSE(FaultPlan::parse("timer.miss=-0.1", &plan, &err));
    EXPECT_FALSE(FaultPlan::parse("pmu.width=4", &plan, &err));
    EXPECT_FALSE(FaultPlan::parse("pmu.width=64", &plan, &err));
    EXPECT_FALSE(FaultPlan::parse("module.initfail=-1", &plan, &err));
    EXPECT_FALSE(FaultPlan::parse("reader.stall=10lightyears",
                                  &plan, &err));
    EXPECT_FALSE(FaultPlan::parse("justakey", &plan, &err));
    EXPECT_FALSE(FaultPlan::parse("=value", &plan, &err));
}

TEST(FaultPlan, FailedParseLeavesOutputUntouched)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse("pmu.width=24", &plan));
    ASSERT_EQ(plan.counterWidth, 24);
    EXPECT_FALSE(FaultPlan::parse("pmu.width=3", &plan));
    EXPECT_EQ(plan.counterWidth, 24);
    EXPECT_FALSE(FaultPlan::parse("pmu.width=16;nope=1", &plan));
    EXPECT_EQ(plan.counterWidth, 24);
}

TEST(FaultPlan, StrRoundTrips)
{
    const std::string spec =
        "seed=9;timer.miss=0.25;pmu.width=32;read.fail=0.1;"
        "reader.stall=3ms;module.initfail=1;target.crash=7ms";
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse(spec, &plan));
    FaultPlan again;
    ASSERT_TRUE(FaultPlan::parse(plan.str(), &again));
    EXPECT_EQ(again.str(), plan.str());
    EXPECT_EQ(again.seed, plan.seed);
    EXPECT_EQ(again.counterWidth, plan.counterWidth);
    EXPECT_EQ(again.readerStall, plan.readerStall);
    EXPECT_EQ(again.targetCrashAt, plan.targetCrashAt);
}

TEST(FaultPlan, PointTableIsComplete)
{
    // Every registered point has a distinct, nonempty key and name.
    ASSERT_GE(numFaultPoints, 8);
    for (int i = 0; i < numFaultPoints; ++i) {
        auto p = static_cast<FaultPoint>(i);
        ASSERT_NE(fault::faultPointKey(p), nullptr);
        ASSERT_NE(fault::faultPointName(p), nullptr);
        EXPECT_GT(std::string(fault::faultPointKey(p)).size(), 0u);
        for (int j = i + 1; j < numFaultPoints; ++j) {
            auto q = static_cast<FaultPoint>(j);
            EXPECT_STRNE(fault::faultPointKey(p),
                         fault::faultPointKey(q));
            EXPECT_STRNE(fault::faultPointName(p),
                         fault::faultPointName(q));
        }
    }
    EXPECT_STREQ(fault::faultPointKey(FaultPoint::counterWidth),
                 "pmu.width");
    EXPECT_STREQ(fault::faultPointName(FaultPoint::counterWidth),
                 "counterWidth");
}

TEST(FaultPlan, FleetKeysParseAndRoundTrip)
{
    FaultPlan plan;
    ASSERT_TRUE(FaultPlan::parse(
        "machine.crash=0.3;link.drop=0.1;link.delay=0.2;"
        "link.delay.by=500us;collector.crash=2ms",
        &plan));
    EXPECT_DOUBLE_EQ(plan.machineCrashProb, 0.3);
    EXPECT_DOUBLE_EQ(plan.linkDropProb, 0.1);
    EXPECT_DOUBLE_EQ(plan.linkDelayProb, 0.2);
    EXPECT_EQ(plan.linkDelayBy, 500_us);
    EXPECT_EQ(plan.collectorCrashAt, 2_ms);
    EXPECT_TRUE(plan.active());
    EXPECT_TRUE(plan.linkFaultsActive());

    FaultPlan again;
    ASSERT_TRUE(FaultPlan::parse(plan.str(), &again));
    EXPECT_EQ(again.str(), plan.str());
    EXPECT_EQ(again.linkDelayBy, plan.linkDelayBy);
    EXPECT_EQ(again.collectorCrashAt, plan.collectorCrashAt);

    // Each fleet key alone activates the plan.
    FaultPlan solo;
    ASSERT_TRUE(FaultPlan::parse("machine.crash=0.5", &solo));
    EXPECT_TRUE(solo.active());
    EXPECT_FALSE(solo.linkFaultsActive());
    ASSERT_TRUE(FaultPlan::parse("collector.crash=1ms", &solo));
    EXPECT_TRUE(solo.active());
}

TEST(FaultPlan, FleetKeysRejectBadValues)
{
    FaultPlan plan;
    EXPECT_FALSE(FaultPlan::parse("machine.crash=1.5", &plan));
    EXPECT_FALSE(FaultPlan::parse("link.drop=-0.1", &plan));
    EXPECT_FALSE(FaultPlan::parse("link.delay.by=0", &plan));
    EXPECT_FALSE(FaultPlan::parse("link.delay.by=oops", &plan));
    EXPECT_FALSE(FaultPlan::parse("collector.crash=2parsecs",
                                  &plan));
}

TEST(FaultPlan, UnknownKeyErrorNamesNearestValidKey)
{
    FaultPlan plan;
    std::string err;

    ASSERT_FALSE(FaultPlan::parse("machine.crsh=0.3", &plan, &err));
    EXPECT_NE(err.find("machine.crsh"), std::string::npos);
    EXPECT_NE(err.find("nearest valid key"), std::string::npos);
    EXPECT_NE(err.find("'machine.crash'"), std::string::npos);

    ASSERT_FALSE(FaultPlan::parse("timer.mis=0.1", &plan, &err));
    EXPECT_NE(err.find("'timer.miss'"), std::string::npos);

    ASSERT_FALSE(FaultPlan::parse("link.delay.bye=2ms", &plan,
                                  &err));
    EXPECT_NE(err.find("'link.delay.by'"), std::string::npos);

    ASSERT_FALSE(FaultPlan::parse("reader.stall.q=0.5", &plan,
                                  &err));
    EXPECT_NE(err.find("'reader.stall.p'"), std::string::npos);
}
