#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/determinism.hh"
#include "analysis/event_trace.hh"
#include "analysis/invariants.hh"
#include "fault/fault_injector.hh"
#include "kernel/system.hh"
#include "kleb/durable_log.hh"
#include "kleb/log_recovery.hh"
#include "kleb/session.hh"
#include "tools/harness.hh"
#include "workload/linpack.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using analysis::DeterminismHarness;
using analysis::DeterminismReport;
using analysis::EventTrace;
using analysis::Observation;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

/** Fast supervision: sub-millisecond detection, short backoff. */
void
fastSupervision(kleb::Session::Options &o)
{
    o.supervise = true;
    // Dedicated core: on the target's core a CPU-bound workload
    // delays every drain wakeup by a scheduler quantum (~2 ms), so
    // heartbeats would arrive slower than this timeout and healthy
    // controllers would be killed as stale.
    o.controllerCore = 1;
    o.controllerTuning.drainInterval = usToTicks(500);
    o.supervisorTuning.pollInterval = usToTicks(500);
    o.supervisorTuning.heartbeatTimeout = msToTicks(2);
    o.supervisorTuning.restartBackoff = usToTicks(100);
}

/** Everything a recovery scenario can be asserted on afterwards. */
struct RecoveryOutcome
{
    std::vector<kleb::Sample> samples;   //!< merged in-memory log
    std::vector<std::uint8_t> medium;    //!< post-corruption image
    kleb::RecoveredLog rec;              //!< scan of `medium`
    std::optional<stats::TimeSeries> recovered;
    kleb::SupervisorStats sup{};
    std::size_t incarnations = 0;
    bool finished = false;
    bool aborted = false;
    bool targetDone = false;
    std::uint64_t targetInstructions = 0;
    Tick targetExit = 0;
    Tick finalTick = 0;
    std::string injections;
    std::vector<std::string> violations;
};

/**
 * Run one workload under a *supervised* K-LEB session with the
 * given fault spec, capture the durable log, corrupt it per the
 * plan's log.* keys, scan + splice it back, and invariant-check
 * the whole outcome (sample log, recovered series, supervision
 * accounting).
 */
RecoveryOutcome
runSupervised(const std::string &spec, std::uint64_t seed,
              const std::function<void(kleb::Session::Options &)>
                  &mutate = nullptr,
              int mega_instructions = 40)
{
    System sys(hw::MachineConfig::corei7_920(), seed, quietCosts());
    analysis::InvariantChecker checker;
    checker.attachQueue(sys.eq());
    checker.attachKernel(sys.kernel());

    fault::FaultPlan plan;
    std::string err;
    EXPECT_TRUE(fault::FaultPlan::parse(spec, &plan, &err)) << err;
    fault::FaultInjector injector(plan, seed);
    injector.attach(sys);

    FixedWorkSource src =
        computeSource(mega_instructions, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired,
                   hw::HwEvent::branchRetired};
    opts.period = 100_us;
    fastSupervision(opts);
    if (mutate)
        mutate(opts);
    auto stall = injector.readerStallHook();
    auto hang = injector.controllerHangHook(sys);
    if (stall && hang)
        opts.controllerTuning.drainStallHook = [stall, hang] {
            return stall() + hang();
        };
    else if (hang)
        opts.controllerTuning.drainStallHook = hang;
    else if (stall)
        opts.controllerTuning.drainStallHook = stall;

    kleb::Session session(sys, opts);
    session.monitor(target);
    injector.scheduleControllerCrash(sys,
                                     session.controllerProcess());
    injector.scheduleTargetCrash(sys, target);

    sys.run(secToTicks(10.0));

    RecoveryOutcome out;
    out.samples = session.samples();
    out.finished = session.finished();
    out.aborted = session.aborted();
    out.sup = session.supervisorStats();
    out.incarnations = session.incarnations();
    out.targetDone = target->state() == ProcState::zombie;
    out.targetExit = target->exitTick();
    out.targetInstructions =
        target->execContext()->instructionsRetired();
    out.finalTick = sys.now();

    // Crash-and-recover: corrupt the captured log image the way the
    // plan prescribes, then replay it through the recovery scan.
    EXPECT_NE(session.durableLog(), nullptr);
    out.medium = session.durableLog()->bytes();
    injector.corruptLog(out.medium, kleb::DurableLog::headerSize);
    out.injections = injector.injectionSummary();
    out.rec = kleb::LogRecovery::scan(out.medium);
    out.recovered = kleb::LogRecovery::splice(
        out.rec, {"inst_retired", "branch_retired"});

    checker.checkSampleLog(out.samples);
    checker.checkRecoveredSeries(*out.recovered);
    checker.checkSupervision(out.sup);
    out.violations = checker.violations();
    return out;
}

std::size_t
samplesAtOrBefore(const std::vector<kleb::Sample> &log, Tick t)
{
    std::size_t n = 0;
    for (const kleb::Sample &s : log)
        if (s.timestamp <= t)
            ++n;
    return n;
}

} // namespace

/**
 * The headline scenario: the controller crashes at 40% of a LINPACK
 * run.  The supervisor restarts it, the replacement re-attaches to
 * the still-loaded module (whose ring buffer kept collecting), and
 * the recovery scan ends with at least the pre-crash samples plus
 * post-restart samples, one explicit gap record at the journal
 * outage, and exact frame accounting.
 */
TEST(RecoveryChaos, CrashAt40PercentOfLinpackRecovers)
{
    // Sized so 40% of the run lies well past the controller's
    // first drain (arming takes ~0.5 ms, drains run every 0.5 ms):
    // the pre-crash epoch must hold journaled samples for the
    // recovery scan to bridge with a gap record.
    workload::LinpackParams params;
    params.n = 300;
    params.trials = 6;
    params.blocksPerTrial = 8;

    auto run = [&params](const std::string &spec,
                         Tick *lifetime) {
        System sys(hw::MachineConfig::corei7_920(), 11,
                   quietCosts());
        analysis::InvariantChecker checker;
        checker.attachQueue(sys.eq());
        checker.attachKernel(sys.kernel());

        fault::FaultPlan plan;
        std::string err;
        EXPECT_TRUE(fault::FaultPlan::parse(spec, &plan, &err))
            << err;
        fault::FaultInjector injector(plan, 11);
        injector.attach(sys);

        auto linpack = workload::makeLinpack(
            params, 0x100000000ULL, sys.forkRng(1));
        Process *target = sys.kernel().createWorkload(
            "linpack", linpack.get(), 0);

        kleb::Session::Options opts;
        opts.events = {hw::HwEvent::instRetired,
                       hw::HwEvent::arithMul};
        opts.period = 100_us;
        fastSupervision(opts);
        kleb::Session session(sys, opts);
        session.monitor(target);
        injector.scheduleControllerCrash(
            sys, session.controllerProcess());
        sys.run(secToTicks(10.0));

        RecoveryOutcome out;
        out.samples = session.samples();
        out.finished = session.finished();
        out.sup = session.supervisorStats();
        out.incarnations = session.incarnations();
        out.targetDone = target->state() == ProcState::zombie;
        out.targetExit = target->exitTick();
        out.medium = session.durableLog()->bytes();
        out.rec = kleb::LogRecovery::scan(out.medium);
        out.recovered = kleb::LogRecovery::splice(
            out.rec, {"inst_retired", "arith_mul"});
        checker.checkSampleLog(out.samples);
        checker.checkRecoveredSeries(*out.recovered);
        checker.checkSupervision(out.sup);
        out.violations = checker.violations();
        if (lifetime)
            *lifetime = target->exitTick();
        return out;
    };

    // Probe run: fault-free, to learn the run's natural lifetime.
    Tick lifetime = 0;
    RecoveryOutcome clean = run("", &lifetime);
    ASSERT_TRUE(clean.targetDone);
    ASSERT_GT(lifetime, 0u);
    EXPECT_EQ(clean.sup.restarts, 0u);
    EXPECT_TRUE(clean.rec.report.balanced());
    EXPECT_TRUE(clean.violations.empty())
        << clean.violations.front();

    // Crash the controller at 40% of that lifetime.
    const Tick crash_tick = lifetime * 2 / 5;
    RecoveryOutcome out = run(
        "controller.crash=" + std::to_string(crash_tick), nullptr);

    // The workload still completes, supervised end to end.
    EXPECT_TRUE(out.targetDone);
    EXPECT_TRUE(out.finished);
    EXPECT_EQ(out.incarnations, 2u);
    EXPECT_EQ(out.sup.restarts, 1u);
    EXPECT_EQ(out.sup.reattaches, 1u);
    EXPECT_EQ(out.sup.failedReattaches, 0u);
    EXPECT_GT(out.sup.totalOutage, 0u);
    EXPECT_FALSE(out.sup.budgetExhausted);

    // Recovery ends with at least every pre-crash sample plus
    // samples from after the restart.
    const std::size_t pre_crash =
        samplesAtOrBefore(clean.samples, crash_tick);
    ASSERT_GT(pre_crash, 0u);
    EXPECT_GE(out.rec.report.samplesRecovered, pre_crash);
    ASSERT_FALSE(out.rec.samples.empty());
    EXPECT_GT(out.rec.samples.back().timestamp, crash_tick);

    // One explicit gap record bridges the two epochs at the journal
    // outage, and the spliced series carries it in its gap channel.
    EXPECT_EQ(out.rec.report.epochs, 2u);
    ASSERT_EQ(out.rec.report.gaps.size(), 1u);
    EXPECT_EQ(out.rec.report.gaps[0].fromEpoch, 0u);
    EXPECT_EQ(out.rec.report.gaps[0].toEpoch, 1u);
    EXPECT_LE(out.rec.report.gaps[0].from, crash_tick);
    EXPECT_GT(out.rec.report.gaps[0].to,
              out.rec.report.gaps[0].from);
    EXPECT_EQ(out.rec.report.gapTicks,
              out.rec.report.gaps[0].to -
                  out.rec.report.gaps[0].from);

    // Exact accounting: kept + dropped + vanished == emitted.
    EXPECT_TRUE(out.rec.report.balanced());
    EXPECT_EQ(out.rec.report.framesDropped, 0u);
    EXPECT_EQ(out.rec.report.framesVanished, 0u);
    EXPECT_TRUE(out.rec.report.violations.empty())
        << out.rec.report.violations.front();
    EXPECT_TRUE(out.violations.empty()) << out.violations.front();
}

TEST(RecoveryChaos, HangDetectedKilledAndRestarted)
{
    // controller.hang wedges the drain loop without killing the
    // process: only the heartbeat timeout can spot it.  The
    // supervisor must kill and replace the zombie-in-spirit.
    // The hang fires early so detection (~hang + 2 ms timeout)
    // lands long before the target exits: the module wakes the
    // controller on target exit, which would cure the wedge.
    RecoveryOutcome out =
        runSupervised("controller.hang=2ms", 23, nullptr, 60);

    EXPECT_TRUE(out.targetDone);
    EXPECT_GE(out.sup.kills, 1u);
    EXPECT_GE(out.sup.restarts, 1u);
    EXPECT_EQ(out.sup.reattaches, out.sup.restarts);
    EXPECT_GT(out.rec.report.samplesRecovered, 0u);
    EXPECT_TRUE(out.rec.report.balanced());
    EXPECT_NE(out.injections.find("controller.hang=1"),
              std::string::npos);
    EXPECT_TRUE(out.violations.empty()) << out.violations.front();
}

TEST(RecoveryChaos, TornTailAndBitflipsStayBalanced)
{
    // Crash mid-run, then mangle the captured log image: tear 137
    // bytes off the tail and flip 3 random bits.  Recovery must
    // stay balanced, flag the tear, and replay deterministically.
    RecoveryOutcome out = runSupervised(
        "controller.crash=8ms;log.torn_tail=137;log.bitflip=3", 31);

    EXPECT_TRUE(out.targetDone);
    EXPECT_TRUE(out.rec.report.valid);
    EXPECT_TRUE(out.rec.report.tornTail);
    EXPECT_TRUE(out.rec.report.balanced());
    EXPECT_GT(out.rec.report.framesDropped, 0u);
    EXPECT_GT(out.rec.report.samplesRecovered, 0u);
    EXPECT_NE(out.injections.find("log.torn_tail=1"),
              std::string::npos);

    // Scanning the same medium again is bit-for-bit identical.
    kleb::RecoveredLog again = kleb::LogRecovery::scan(out.medium);
    EXPECT_EQ(again.report.framesKept, out.rec.report.framesKept);
    EXPECT_EQ(again.report.framesDropped,
              out.rec.report.framesDropped);
    EXPECT_EQ(again.report.framesVanished,
              out.rec.report.framesVanished);
    EXPECT_EQ(again.samples.size(), out.rec.samples.size());
    for (std::size_t i = 0; i < again.samples.size(); ++i) {
        EXPECT_EQ(again.samples[i].timestamp,
                  out.rec.samples[i].timestamp);
        EXPECT_EQ(again.samples[i].counts,
                  out.rec.samples[i].counts);
    }
}

TEST(RecoveryChaos, RestartBudgetExhaustedDegradesCleanly)
{
    // Every read fails: each incarnation aborts its drain loop, the
    // supervisor restarts until the budget is gone, then gives up —
    // and the target still finishes.
    auto tight = [](kleb::Session::Options &o) {
        o.supervisorTuning.restartBudget = 2;
        o.bufferCapacity = 64;
    };
    RecoveryOutcome out =
        runSupervised("read.fail=1.0", 43, tight, 20);

    EXPECT_TRUE(out.targetDone);
    EXPECT_EQ(out.targetInstructions, 20000000u);
    EXPECT_TRUE(out.sup.budgetExhausted);
    EXPECT_EQ(out.sup.restarts, 2u);
    EXPECT_EQ(out.sup.reattaches + out.sup.failedReattaches,
              out.sup.restarts);
    EXPECT_TRUE(out.aborted);
    // Nothing was ever drained, so nothing was ever journaled —
    // recovery of the (epoch-frames-only) log still balances.
    EXPECT_EQ(out.rec.report.samplesRecovered, 0u);
    EXPECT_TRUE(out.rec.report.balanced());
    EXPECT_TRUE(out.violations.empty()) << out.violations.front();
}

TEST(RecoveryChaos, DurableLogAloneChangesNothing)
{
    // durableLog=true without supervision journals on the drain
    // path at zero simulated cost: the in-memory sample log must be
    // byte-identical to a plain session, and the journal replays to
    // exactly those samples.
    auto run = [](bool durable) {
        System sys(hw::MachineConfig::corei7_920(), 7,
                   quietCosts());
        FixedWorkSource src = computeSource(20, 1000000, 2.0);
        Process *target =
            sys.kernel().createWorkload("t", &src, 0);
        kleb::Session::Options opts;
        opts.events = {hw::HwEvent::instRetired,
                       hw::HwEvent::branchRetired};
        opts.period = 100_us;
        opts.durableLog = durable;
        kleb::Session session(sys, opts);
        session.monitor(target);
        sys.run();
        std::pair<std::vector<kleb::Sample>,
                  std::vector<std::uint8_t>>
            out;
        out.first = session.samples();
        if (session.durableLog())
            out.second = session.durableLog()->bytes();
        return out;
    };

    auto plain = run(false);
    auto journaled = run(true);

    ASSERT_EQ(plain.first.size(), journaled.first.size());
    for (std::size_t i = 0; i < plain.first.size(); ++i) {
        EXPECT_EQ(plain.first[i].timestamp,
                  journaled.first[i].timestamp);
        EXPECT_EQ(plain.first[i].counts, journaled.first[i].counts);
    }

    kleb::RecoveredLog rec =
        kleb::LogRecovery::scan(journaled.second);
    EXPECT_TRUE(rec.report.balanced());
    EXPECT_EQ(rec.report.epochs, 1u);
    ASSERT_EQ(rec.samples.size(), journaled.first.size());
    for (std::size_t i = 0; i < rec.samples.size(); ++i) {
        EXPECT_EQ(rec.samples[i].timestamp,
                  journaled.first[i].timestamp);
        EXPECT_EQ(rec.samples[i].counts, journaled.first[i].counts);
    }
}

/**
 * CI sweep: 16 seeds across the crash/torn-tail fault surface.
 * Every run must balance its frame accounting, pass all runtime
 * invariants, finish its workload, and replay identically.
 */
TEST(RecoveryChaos, SixteenSeedSweepBalancesAndReplays)
{
    const std::vector<std::string> specs = {
        "controller.crash=6ms",
        "controller.crash=11ms;log.torn_tail=64",
        "log.torn_tail=250",
        "controller.crash=9ms;log.bitflip=2",
    };
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        const std::string &spec = specs[seed % specs.size()];
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " spec=" + spec);
        RecoveryOutcome a = runSupervised(spec, seed, nullptr, 20);

        EXPECT_TRUE(a.targetDone);
        EXPECT_TRUE(a.rec.report.valid);
        EXPECT_TRUE(a.rec.report.balanced())
            << "kept=" << a.rec.report.framesKept
            << " dropped=" << a.rec.report.framesDropped
            << " vanished=" << a.rec.report.framesVanished
            << " emitted=" << a.rec.report.framesEmitted;
        EXPECT_TRUE(a.violations.empty()) << a.violations.front();

        RecoveryOutcome b = runSupervised(spec, seed, nullptr, 20);
        EXPECT_EQ(a.medium, b.medium);
        EXPECT_EQ(a.rec.report.samplesRecovered,
                  b.rec.report.samplesRecovered);
        EXPECT_EQ(a.sup.restarts, b.sup.restarts);
        EXPECT_EQ(a.finalTick, b.finalTick);
        EXPECT_EQ(a.injections, b.injections);
    }
}

namespace
{

/**
 * A supervised crash-and-recover session as a determinism
 * observation: every recovery-visible number (and a hash of every
 * recovered sample) folds into the counters, so the harness's
 * bit-for-bit replay check covers the full crash path.
 */
Observation
recoveryScenario(std::uint64_t tie_salt)
{
    Observation obs;
    System sys(hw::MachineConfig::corei7_920(), 3, quietCosts());
    sys.eq().setTieBreakSalt(tie_salt);

    EventTrace trace;
    sys.eq().addListener(&trace);

    fault::FaultPlan plan;
    EXPECT_TRUE(fault::FaultPlan::parse(
        "controller.crash=7ms;log.torn_tail=80;log.bitflip=2",
        &plan));
    fault::FaultInjector injector(plan, 3);
    injector.attach(sys);

    FixedWorkSource src = computeSource(20, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired,
                   hw::HwEvent::branchRetired};
    opts.period = 100_us;
    fastSupervision(opts);
    kleb::Session session(sys, opts);
    session.monitor(target);
    injector.scheduleControllerCrash(sys,
                                     session.controllerProcess());
    sys.run(secToTicks(10.0));

    std::vector<std::uint8_t> medium =
        session.durableLog()->bytes();
    injector.corruptLog(medium, kleb::DurableLog::headerSize);
    kleb::RecoveredLog rec = kleb::LogRecovery::scan(medium);

    obs.counters.emplace_back("frames.kept",
                              rec.report.framesKept);
    obs.counters.emplace_back("frames.dropped",
                              rec.report.framesDropped);
    obs.counters.emplace_back("frames.vanished",
                              rec.report.framesVanished);
    obs.counters.emplace_back("gap.ticks", rec.report.gapTicks);
    obs.counters.emplace_back("restarts",
                              session.supervisorStats().restarts);
    obs.counters.emplace_back("injected",
                              injector.totalInjected());
    obs.counters.emplace_back("final.tick", sys.now());

    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const kleb::Sample &s : rec.samples) {
        h = (h ^ s.timestamp) * 0x100000001b3ULL;
        for (std::uint8_t i = 0; i < s.numEvents; ++i)
            h = (h ^ s.counts[i]) * 0x100000001b3ULL;
    }
    obs.counters.emplace_back("recovered.hash", h);

    sys.eq().removeListener(&trace);
    obs.trace = trace;
    return obs;
}

} // namespace

TEST(RecoveryChaos, CrashRecoveryReplaysBitForBit)
{
    DeterminismReport report =
        DeterminismHarness::checkReplay(recoveryScenario);
    EXPECT_TRUE(report.deterministic) << report.summary();
    EXPECT_FALSE(report.divergence.has_value()) << report.summary();
    EXPECT_TRUE(report.counterMismatches.empty())
        << report.summary();
}
