/**
 * @file
 * SMP chaos: per-CPU K-LEB sessions under CPU hotplug, task
 * migration, and PMU contention (DESIGN.md section 16).
 *
 * The scenarios here are the acceptance gates for the SMP
 * hardening: a session must survive an offline -> online cycle of
 * the very core it is monitoring with its migration ledger
 * balanced, the durable journal must splice the coreOffline gap
 * explicitly on recovery, and a supervisor may never share a core
 * with its ward.
 */

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "analysis/invariants.hh"
#include "fault/fault_injector.hh"
#include "kernel/system.hh"
#include "kleb/log_recovery.hh"
#include "kleb/session.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

/** Everything an SMP chaos scenario can be asserted on. */
struct SmpOutcome
{
    std::vector<kleb::Sample> samples;
    kleb::KLebStatus status{};
    stats::LossCounts losses{};
    bool finished = false;
    bool aborted = false;
    bool targetDone = false;
    std::uint64_t kernelMigrations = 0;
    std::uint64_t hotplugOfflines = 0;
    std::vector<std::uint8_t> durableBytes;
    std::string injections;
    std::vector<std::string> invariantViolations;
};

/**
 * Run one workload under a K-LEB session with the given SMP fault
 * spec, invariant-checked (including the per-core monotonicity,
 * no-sample-on-offline-core, and migration-ledger checks), and
 * return the full outcome.
 */
SmpOutcome
runSmpChaos(const std::string &spec, std::uint64_t seed,
            const std::function<void(kleb::Session::Options &)>
                &mutate = nullptr,
            int mega_instructions = 40)
{
    System sys(hw::MachineConfig::corei7_920(), seed, quietCosts());
    analysis::InvariantChecker checker;
    checker.attachQueue(sys.eq());
    checker.attachKernel(sys.kernel());

    fault::FaultPlan plan;
    std::string err;
    EXPECT_TRUE(fault::FaultPlan::parse(spec, &plan, &err)) << err;
    fault::FaultInjector injector(plan, seed);
    injector.attach(sys);

    FixedWorkSource src =
        computeSource(mega_instructions, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired,
                   hw::HwEvent::branchRetired};
    opts.period = 100_us;
    if (mutate)
        mutate(opts);
    kleb::Session session(sys, opts);
    session.monitor(target);
    injector.scheduleCpuHotplug(sys);
    injector.scheduleTaskMigration(sys, target);

    sys.run(secToTicks(5.0));

    SmpOutcome out;
    out.samples = session.samples();
    out.status = session.status();
    out.losses = session.losses();
    out.finished = session.finished();
    out.aborted = session.aborted();
    out.targetDone = target->state() == ProcState::zombie;
    out.kernelMigrations = sys.kernel().migrations();
    out.hotplugOfflines = sys.kernel().coreOfflines();
    if (const kleb::DurableLog *dlog = session.durableLog())
        out.durableBytes = dlog->bytes();
    out.injections = injector.injectionSummary();
    checker.checkSmpSampleLog(out.samples);
    checker.checkMigrationLedger(out.status);
    out.invariantViolations = checker.violations();
    return out;
}

std::set<std::uint16_t>
coresSeen(const std::vector<kleb::Sample> &log)
{
    std::set<std::uint16_t> cores;
    for (const kleb::Sample &s : log)
        if (!kleb::isCoreMarker(s.cause))
            cores.insert(s.core);
    return cores;
}

} // namespace

TEST(SmpChaos, OfflineOnlineOfMonitoredCoreSurvives)
{
    // Take the monitored core down mid-run and bring it back: the
    // session must keep monitoring (the task migrates away), the
    // ledger must balance, and both hotplug markers must be
    // journaled.
    SmpOutcome out = runSmpChaos(
        "cpu.offline=2ms;cpu.offline.core=0;cpu.online=6ms", 11,
        [](kleb::Session::Options &o) { o.durableLog = true; });

    EXPECT_TRUE(out.targetDone);
    EXPECT_TRUE(out.finished);
    EXPECT_FALSE(out.aborted);
    EXPECT_EQ(out.hotplugOfflines, 1u);
    EXPECT_GE(out.kernelMigrations, 1u);
    EXPECT_GE(out.status.targetMigrations, 1u);
    EXPECT_GE(out.status.coreMarkers, 2u);
    EXPECT_GE(out.status.samplesMigrated, 1u);
    EXPECT_TRUE(out.invariantViolations.empty())
        << out.invariantViolations.front();
    // Samples landed on both the original and the fallback core.
    EXPECT_GE(coresSeen(out.samples).size(), 2u);
}

TEST(SmpChaos, RecoverySplicesCoreOutageExplicitly)
{
    SmpOutcome out = runSmpChaos(
        "cpu.offline=2ms;cpu.offline.core=0;cpu.online=6ms", 11,
        [](kleb::Session::Options &o) { o.durableLog = true; });
    ASSERT_FALSE(out.durableBytes.empty());

    kleb::RecoveredLog rec =
        kleb::LogRecovery::scan(out.durableBytes);
    EXPECT_TRUE(rec.report.balanced());
    EXPECT_TRUE(rec.report.violations.empty())
        << rec.report.violations.front();
    EXPECT_EQ(rec.report.coreMarkers, 2u);
    ASSERT_EQ(rec.report.coreOutages.size(), 1u);
    const kleb::CoreOutageRecord &outage =
        rec.report.coreOutages.front();
    EXPECT_EQ(outage.core, 0u);
    EXPECT_TRUE(outage.closed);
    EXPECT_GT(outage.to, outage.from);
    EXPECT_EQ(rec.report.coreOutageTicks, outage.to - outage.from);

    // Markers are control records: none of them may surface as a
    // recovered sample.
    for (const kleb::Sample &s : rec.samples)
        EXPECT_FALSE(kleb::isCoreMarker(s.cause));

    // The spliced series grows an explicit core_outage_ticks
    // channel whose one nonzero entry carries the outage length.
    stats::TimeSeries spliced = kleb::LogRecovery::splice(
        rec, {"inst_retired", "branch_retired"});
    const auto &names = spliced.channelNames();
    ASSERT_EQ(names.size(), 4u);
    EXPECT_EQ(names.back(), "core_outage_ticks");
    double total = 0.0;
    std::size_t nonzero = 0;
    for (std::size_t r = 0; r < spliced.size(); ++r) {
        const double v = spliced.valueAt(r, 3);
        total += v;
        if (v != 0.0)
            ++nonzero;
    }
    EXPECT_EQ(nonzero, 1u);
    EXPECT_EQ(total,
              static_cast<double>(rec.report.coreOutageTicks));
}

TEST(SmpChaos, RecoveryWithoutMarkersKeepsLegacyChannels)
{
    // A journal with no hotplug markers must splice to the exact
    // pre-SMP channel set: no conditional channel, no churn in
    // byte-identical baselines.
    SmpOutcome out = runSmpChaos(
        "task.migrate=700us", 13,
        [](kleb::Session::Options &o) { o.durableLog = true; });
    ASSERT_FALSE(out.durableBytes.empty());
    kleb::RecoveredLog rec =
        kleb::LogRecovery::scan(out.durableBytes);
    EXPECT_EQ(rec.report.coreMarkers, 0u);
    EXPECT_TRUE(rec.report.coreOutages.empty());
    stats::TimeSeries spliced = kleb::LogRecovery::splice(
        rec, {"inst_retired", "branch_retired"});
    ASSERT_EQ(spliced.channelNames().size(), 3u);
    EXPECT_EQ(spliced.channelNames().back(), "gap_ticks");
}

TEST(SmpChaos, MigrationHeavyScheduleKeepsLedgerBalanced)
{
    // Bounce the target across cores every 700 us: samples must be
    // attributed to each core they were taken on, stay per-core
    // monotone, and the ledger must partition exactly.
    SmpOutcome out = runSmpChaos("task.migrate=700us", 17);

    EXPECT_TRUE(out.targetDone);
    EXPECT_TRUE(out.finished);
    EXPECT_FALSE(out.aborted);
    EXPECT_GE(out.status.targetMigrations, 3u);
    EXPECT_GE(coresSeen(out.samples).size(), 2u);
    EXPECT_EQ(out.status.samplesEmitted,
              out.status.samplesKept + out.status.samplesMigrated +
                  out.status.samplesDropped);
    EXPECT_TRUE(out.invariantViolations.empty())
        << out.invariantViolations.front();
}

TEST(SmpChaos, MigrationPreservesExactTotals)
{
    // Counter attribution across migrations telescopes (snapshot at
    // migrate-out, re-base at migrate-in): the final cumulative
    // counts must equal an unmigrated run's to the last count.
    SmpOutcome still = runSmpChaos("", 19);
    SmpOutcome moved = runSmpChaos("task.migrate=900us", 19);
    ASSERT_FALSE(still.samples.empty());
    ASSERT_FALSE(moved.samples.empty());
    EXPECT_GE(moved.status.targetMigrations, 1u);
    // Same workload, same seed: identical retirement totals even
    // though the moved run crossed cores mid-flight.
    EXPECT_EQ(still.samples.back().counts[0],
              moved.samples.back().counts[0]);
}

TEST(SmpChaos, PmuContentionIsRetriedAndCounted)
{
    // A flaky PMU owner refuses about half the claim attempts: the
    // controller's EBUSY backoff and the per-switch-in retries must
    // ride it out, and every refusal must be counted.
    SmpOutcome out =
        runSmpChaos("task.migrate=700us;pmu.contend=0.5", 23);

    EXPECT_TRUE(out.targetDone);
    EXPECT_GT(out.status.contentionEvents, 0u);
    // Forfeited windows are gaps, not drops.
    EXPECT_EQ(out.losses.gaps, out.status.lostToContention);
    EXPECT_EQ(out.status.samplesEmitted,
              out.status.samplesKept + out.status.samplesMigrated +
                  out.status.samplesDropped);
    EXPECT_TRUE(out.invariantViolations.empty())
        << out.invariantViolations.front();
}

TEST(SmpChaos, HotplugPlusMigrationPlusContention)
{
    // The full storm.  Whatever the interleaving, the run must end
    // with the target done, the ledger partitioned, and no
    // invariant (per-core monotonicity, offline-core silence)
    // violated.
    SmpOutcome out = runSmpChaos(
        "cpu.offline=3ms;cpu.offline.core=0;cpu.online=9ms;"
        "task.migrate=1ms;pmu.contend=0.3",
        29, [](kleb::Session::Options &o) { o.durableLog = true; });

    EXPECT_TRUE(out.targetDone);
    EXPECT_EQ(out.status.samplesEmitted,
              out.status.samplesKept + out.status.samplesMigrated +
                  out.status.samplesDropped);
    EXPECT_TRUE(out.invariantViolations.empty())
        << out.invariantViolations.front();

    kleb::RecoveredLog rec =
        kleb::LogRecovery::scan(out.durableBytes);
    EXPECT_TRUE(rec.report.balanced());
}

TEST(SmpChaos, SupervisorRefusesToShareCoreWithWard)
{
    // Pinning the watchdog onto its ward's own core is refused
    // outright — a hung controller monopolizes its core and would
    // starve the very poll that detects the hang.
    System sys(hw::MachineConfig::corei7_920(), 31, quietCosts());
    FixedWorkSource src = computeSource(1, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 2);

    kleb::Session::Options opts;
    opts.period = 100_us;
    opts.supervise = true;
    opts.controllerCore = 2;
    opts.supervisorCore = 2; // same core as the controller
    kleb::Session session(sys, opts);
    EXPECT_DEATH(session.monitor(target), "same core");
}

TEST(SmpChaos, SupervisorHonorsDistinctPin)
{
    System sys(hw::MachineConfig::corei7_920(), 31, quietCosts());
    FixedWorkSource src = computeSource(4, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 2);

    kleb::Session::Options opts;
    opts.period = 100_us;
    opts.supervise = true;
    opts.controllerCore = 2;
    opts.supervisorCore = 3;
    kleb::Session session(sys, opts);
    session.monitor(target);
    sys.run(secToTicks(5.0));
    EXPECT_TRUE(session.finished());
    EXPECT_EQ(target->state(), ProcState::zombie);
}

TEST(SmpChaos, GovernorResetsHysteresisAcrossOutage)
{
    kleb::RateGovernor::Config gc;
    gc.costPerSample = usToTicks(1);
    gc.costPerDrain = usToTicks(5);
    kleb::RateGovernor gov(gc, usToTicks(100));

    // Build up an estimate.
    gov.observe(msToTicks(1), 10);
    gov.observe(msToTicks(2), 10);
    EXPECT_GT(gov.overheadEstimate(), 0.0);

    // An offline with no online yet changes nothing.
    gov.noteCoreOffline(0);
    EXPECT_GT(gov.overheadEstimate(), 0.0);

    // The online completes the cycle: estimator discarded, period
    // kept, reset counted.
    gov.noteCoreOnline(0);
    EXPECT_EQ(gov.overheadEstimate(), 0.0);
    EXPECT_EQ(gov.period(), usToTicks(100));
    EXPECT_EQ(gov.stats().hotplugResets, 1u);

    // A second online without a preceding offline is a no-op.
    gov.noteCoreOnline(0);
    EXPECT_EQ(gov.stats().hotplugResets, 1u);

    // The first post-reset observation only re-anchors the clock —
    // the quiesce/re-arm transient never feeds the EWMA.
    EXPECT_EQ(gov.observe(msToTicks(10), 50), std::nullopt);
    EXPECT_EQ(gov.overheadEstimate(), 0.0);
}
