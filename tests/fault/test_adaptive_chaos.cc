#include <gtest/gtest.h>

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/invariants.hh"
#include "fault/fault_injector.hh"
#include "kernel/system.hh"
#include "kleb/durable_log.hh"
#include "kleb/log_recovery.hh"
#include "kleb/rate_governor.hh"
#include "kleb/session.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

/** Fast supervision + adaptive sampling (same shape as the
 *  recovery-chaos suite, plus a governor driving SET_PERIOD). */
void
fastAdaptive(kleb::Session::Options &o)
{
    o.supervise = true;
    o.adaptive = true;
    o.controllerCore = 1;
    o.controllerTuning.drainInterval = usToTicks(500);
    o.supervisorTuning.pollInterval = usToTicks(500);
    o.supervisorTuning.heartbeatTimeout = msToTicks(2);
    o.supervisorTuning.restartBackoff = usToTicks(100);
    // No settle window and a tight budget: the governor reprograms
    // on nearly every drain cycle, maximizing the crash surface
    // these tests aim faults at.
    o.governor.settleObservations = 0;
}

/** Everything an adaptive-chaos scenario is asserted on. */
struct AdaptiveOutcome
{
    std::vector<kleb::Sample> samples;
    std::vector<std::uint8_t> medium;   //!< post-corruption image
    kleb::RecoveredLog rec;             //!< scan of `medium`
    kleb::KLebStatus status{};
    kleb::RateGovernor::Stats governor{};
    kleb::SupervisorStats sup{};
    std::size_t incarnations = 0;
    bool finished = false;
    bool aborted = false;
    bool targetDone = false;
    Tick finalTick = 0;
    std::string injections;
    std::vector<std::string> violations;
};

/**
 * One *adaptive, supervised* session under the given fault spec:
 * run, capture + corrupt the journal, scan it back, and put the
 * whole outcome (including the rate-change chain) through the
 * invariant checker.
 */
AdaptiveOutcome
runAdaptive(const std::string &spec, std::uint64_t seed,
            const std::function<void(kleb::Session::Options &)>
                &mutate = nullptr,
            int mega_instructions = 40)
{
    System sys(hw::MachineConfig::corei7_920(), seed, quietCosts());
    analysis::InvariantChecker checker;
    checker.attachQueue(sys.eq());
    checker.attachKernel(sys.kernel());

    fault::FaultPlan plan;
    std::string err;
    EXPECT_TRUE(fault::FaultPlan::parse(spec, &plan, &err)) << err;
    fault::FaultInjector injector(plan, seed);
    injector.attach(sys);

    FixedWorkSource src =
        computeSource(mega_instructions, 1000000, 2.0);
    Process *target = sys.kernel().createWorkload("t", &src, 0);

    kleb::Session::Options opts;
    opts.events = {hw::HwEvent::instRetired,
                   hw::HwEvent::branchRetired};
    opts.period = 100_us;
    fastAdaptive(opts);
    if (mutate)
        mutate(opts);
    opts.controllerTuning.setPeriodFaultHook =
        injector.setPeriodFailHook();
    opts.controllerTuning.reprogramHook =
        injector.reprogramCrashHook(sys);
    if (auto stall = injector.readerStallHook())
        opts.controllerTuning.drainStallHook = stall;

    kleb::Session session(sys, opts);
    session.monitor(target);
    injector.scheduleControllerCrash(sys,
                                     session.controllerProcess());
    injector.scheduleTargetCrash(sys, target);

    sys.run(secToTicks(10.0));

    AdaptiveOutcome out;
    out.samples = session.samples();
    out.finished = session.finished();
    out.aborted = session.aborted();
    out.status = session.status();
    if (session.governor())
        out.governor = session.governor()->stats();
    out.sup = session.supervisorStats();
    out.incarnations = session.incarnations();
    out.targetDone = target->state() == ProcState::zombie;
    out.finalTick = sys.now();

    EXPECT_NE(session.durableLog(), nullptr);
    out.medium = session.durableLog()->bytes();
    injector.corruptLog(out.medium, kleb::DurableLog::headerSize);
    out.injections = injector.injectionSummary();
    out.rec = kleb::LogRecovery::scan(out.medium);

    checker.checkSampleLog(out.samples);
    checker.checkSupervision(out.sup);
    checker.checkAdaptiveRecovery(out.rec);
    out.violations = checker.violations();
    return out;
}

} // namespace

/**
 * Fault-free shakeout: with drains every 500 us the fixed drain
 * cost alone dwarfs a 1% budget, so the governor must walk the
 * period up, journaling one rateChange frame per landed SET_PERIOD,
 * and the recovered chain must agree with the module's own count.
 */
TEST(AdaptiveChaos, GovernorWalksPeriodUpAndJournalsEveryChange)
{
    AdaptiveOutcome out = runAdaptive("", 5);

    EXPECT_TRUE(out.targetDone);
    EXPECT_TRUE(out.finished);
    EXPECT_FALSE(out.aborted);
    EXPECT_GE(out.status.periodChanges, 1u);
    EXPECT_GT(out.status.currentPeriod, usToTicks(100));
    EXPECT_GE(out.governor.backOffs, out.status.periodChanges);
    // Every landed change is journaled exactly once.
    EXPECT_EQ(out.rec.report.rateChanges, out.status.periodChanges);
    ASSERT_EQ(out.rec.rateChanges.size(), out.status.periodChanges);
    EXPECT_EQ(out.rec.rateChanges.front().oldPeriod, usToTicks(100));
    EXPECT_EQ(out.rec.rateChanges.back().newPeriod,
              out.status.currentPeriod);
    EXPECT_TRUE(out.rec.report.balanced());
    EXPECT_TRUE(out.violations.empty()) << out.violations.front();
}

/**
 * The tentpole crash window: the fault plan kills the controller
 * in the instant between committing to a reprogram and the
 * SET_PERIOD syscall landing.  Whichever side of the race the seed
 * resolves, recovery must neither lose nor double-count a sample
 * or a rate change: the journal balances, the chain is consistent,
 * and the re-attached incarnation adopted the module's true period.
 */
TEST(AdaptiveChaos, CrashDuringPendingPeriodChange)
{
    AdaptiveOutcome out = runAdaptive("reprogram.crash=1", 17);

    EXPECT_TRUE(out.targetDone);
    EXPECT_NE(out.injections.find("reprogram.crash=1"),
              std::string::npos);
    EXPECT_GE(out.sup.restarts, 1u);
    EXPECT_GE(out.incarnations, 2u);
    EXPECT_TRUE(out.rec.report.balanced());
    // The journal may or may not hold the racing change, but what
    // it holds must chain: every oldPeriod is the previous
    // newPeriod, and the final entry matches the module.
    if (!out.rec.rateChanges.empty()) {
        EXPECT_EQ(out.rec.rateChanges.back().newPeriod,
                  out.status.currentPeriod);
    }
    EXPECT_TRUE(out.violations.empty()) << out.violations.front();
}

/**
 * Rate retune is best-effort: when every SET_PERIOD ioctl fails
 * past the retry budget the session must degrade to its fixed
 * rate — monitoring continues, nothing aborts, the journal holds
 * zero rateChange frames, and the governor records the rejection.
 */
TEST(AdaptiveChaos, SetPeriodFailuresDegradeToFixedRate)
{
    // Short retry backoff so the full retry budget exhausts inside
    // the heartbeat window: with the default 50 us backoff the
    // later (multi-ms) retry sleeps starve the heartbeat and the
    // supervisor kills the proposal along with the controller
    // before it can be rejected.
    AdaptiveOutcome out = runAdaptive(
        "module.set_period=1.0", 29,
        [](kleb::Session::Options &o) {
            o.controllerTuning.retryBackoff = usToTicks(1);
        });

    EXPECT_TRUE(out.targetDone);
    EXPECT_TRUE(out.finished);
    EXPECT_FALSE(out.aborted);
    EXPECT_EQ(out.status.periodChanges, 0u);
    EXPECT_EQ(out.status.currentPeriod, usToTicks(100));
    EXPECT_TRUE(out.rec.rateChanges.empty());
    EXPECT_GE(out.governor.rejected, 1u);
    EXPECT_FALSE(out.samples.empty());
    EXPECT_TRUE(out.rec.report.balanced());
    EXPECT_TRUE(out.violations.empty()) << out.violations.front();
}

/**
 * CI sweep: 16 seeds across the adaptive fault surface — crashes
 * aimed at the reprogram window, transient SET_PERIOD failures,
 * and journal corruption on top.  Every run must balance, pass the
 * adaptive invariants, finish its workload, and replay
 * bit-for-bit.
 */
TEST(AdaptiveChaos, SixteenSeedSweepBalancesAndReplays)
{
    const std::vector<std::string> specs = {
        "reprogram.crash=1",
        "reprogram.crash=2;log.torn_tail=96",
        "controller.crash=5ms;module.set_period=0.5",
        "module.set_period=0.3;log.bitflip=2",
    };
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
        const std::string &spec = specs[seed % specs.size()];
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " spec=" + spec);
        AdaptiveOutcome a = runAdaptive(spec, seed, nullptr, 20);

        EXPECT_TRUE(a.targetDone);
        EXPECT_TRUE(a.rec.report.valid);
        EXPECT_TRUE(a.rec.report.balanced())
            << "kept=" << a.rec.report.framesKept
            << " dropped=" << a.rec.report.framesDropped
            << " vanished=" << a.rec.report.framesVanished
            << " emitted=" << a.rec.report.framesEmitted;
        EXPECT_TRUE(a.violations.empty()) << a.violations.front();

        AdaptiveOutcome b = runAdaptive(spec, seed, nullptr, 20);
        EXPECT_EQ(a.medium, b.medium);
        EXPECT_EQ(a.rec.report.rateChanges, b.rec.report.rateChanges);
        EXPECT_EQ(a.status.periodChanges, b.status.periodChanges);
        EXPECT_EQ(a.sup.restarts, b.sup.restarts);
        EXPECT_EQ(a.finalTick, b.finalTick);
        EXPECT_EQ(a.injections, b.injections);
    }
}
