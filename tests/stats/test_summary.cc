#include <gtest/gtest.h>

#include <cmath>

#include "stats/summary.hh"

using namespace klebsim::stats;

TEST(RunningStats, Empty)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(5.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_EQ(s.mean(), 5.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 5.0);
    EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMoments)
{
    RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance with n-1 = 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
    EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesBulk)
{
    RunningStats a, b, all;
    for (int i = 0; i < 50; ++i) {
        double v = std::sin(i) * 10;
        (i % 2 ? a : b).add(v);
        all.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_EQ(a.min(), all.min());
    EXPECT_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_EQ(b.mean(), 1.0);
}

TEST(FiveNumber, SortedQuartiles)
{
    FiveNumber f = fiveNumber({1, 2, 3, 4, 5});
    EXPECT_EQ(f.min, 1.0);
    EXPECT_EQ(f.q1, 2.0);
    EXPECT_EQ(f.median, 3.0);
    EXPECT_EQ(f.q3, 4.0);
    EXPECT_EQ(f.max, 5.0);
    EXPECT_EQ(f.mean, 3.0);
    EXPECT_EQ(f.count, 5u);
    EXPECT_EQ(f.iqr(), 2.0);
    EXPECT_EQ(f.range(), 4.0);
}

TEST(FiveNumber, UnsortedInput)
{
    FiveNumber f = fiveNumber({5, 1, 4, 2, 3});
    EXPECT_EQ(f.median, 3.0);
}

TEST(FiveNumber, InterpolatedQuartiles)
{
    // R-7 on {1,2,3,4}: q1 = 1.75, median = 2.5, q3 = 3.25.
    FiveNumber f = fiveNumber({1, 2, 3, 4});
    EXPECT_NEAR(f.q1, 1.75, 1e-12);
    EXPECT_NEAR(f.median, 2.5, 1e-12);
    EXPECT_NEAR(f.q3, 3.25, 1e-12);
}

TEST(FiveNumber, SingleElement)
{
    FiveNumber f = fiveNumber({7});
    EXPECT_EQ(f.min, 7.0);
    EXPECT_EQ(f.median, 7.0);
    EXPECT_EQ(f.max, 7.0);
}

TEST(Percentile, Basics)
{
    std::vector<double> v{10, 20, 30, 40, 50};
    EXPECT_EQ(percentile(v, 0), 10.0);
    EXPECT_EQ(percentile(v, 100), 50.0);
    EXPECT_EQ(percentile(v, 50), 30.0);
    EXPECT_NEAR(percentile(v, 10), 14.0, 1e-12);
}

TEST(PctDiff, Basics)
{
    EXPECT_NEAR(pctDiff(101.0, 100.0), 1.0, 1e-12);
    EXPECT_NEAR(pctDiff(99.0, 100.0), 1.0, 1e-12);
    EXPECT_EQ(pctDiff(100.0, 100.0), 0.0);
}

TEST(LossCounts, EmptyIsLossless)
{
    LossCounts lc;
    EXPECT_EQ(lc.total(), 0u);
    EXPECT_EQ(lc.lost(), 0u);
    EXPECT_DOUBLE_EQ(lc.lossFraction(), 0.0);
    EXPECT_EQ(lc.str(),
              "accepted=0 dropped=0 overflow=0 underflow=0");
}

TEST(LossCounts, TotalsAndFraction)
{
    LossCounts lc;
    lc.accepted = 90;
    lc.dropped = 6;
    lc.overflow = 3;
    lc.underflow = 1;
    EXPECT_EQ(lc.total(), 100u);
    EXPECT_EQ(lc.lost(), 10u);
    EXPECT_DOUBLE_EQ(lc.lossFraction(), 0.1);
    EXPECT_EQ(lc.str(),
              "accepted=90 dropped=6 overflow=3 underflow=1");
}

TEST(LossCounts, MergeAccumulates)
{
    LossCounts a;
    a.accepted = 10;
    a.dropped = 2;
    LossCounts b;
    b.accepted = 5;
    b.overflow = 1;
    b.underflow = 4;
    a.merge(b);
    EXPECT_EQ(a.accepted, 15u);
    EXPECT_EQ(a.dropped, 2u);
    EXPECT_EQ(a.overflow, 1u);
    EXPECT_EQ(a.underflow, 4u);
    EXPECT_EQ(a.total(), 22u);
    a.merge(LossCounts{});
    EXPECT_EQ(a.total(), 22u);
}
