#include <gtest/gtest.h>

#include "stats/histogram.hh"

using klebsim::stats::Histogram;

TEST(Histogram, BinningBasics)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);  // bin 0
    h.add(3.0);  // bin 1
    h.add(9.99); // bin 4
    EXPECT_EQ(h.count(0), 1u);
    EXPECT_EQ(h.count(1), 1u);
    EXPECT_EQ(h.count(4), 1u);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(Histogram, UnderOverflow)
{
    Histogram h(0.0, 1.0, 2);
    h.add(-0.1);
    h.add(1.0); // hi edge counts as overflow
    h.add(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinEdges)
{
    Histogram h(10.0, 20.0, 4);
    EXPECT_DOUBLE_EQ(h.binLo(0), 10.0);
    EXPECT_DOUBLE_EQ(h.binHi(0), 12.5);
    EXPECT_DOUBLE_EQ(h.binLo(3), 17.5);
    EXPECT_DOUBLE_EQ(h.binHi(3), 20.0);
}

TEST(Histogram, Fractions)
{
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    h.add(99.0); // overflow, excluded from fractions
    EXPECT_DOUBLE_EQ(h.fraction(0), 1.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.fraction(1), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(h.fraction(2), 0.0);
}

TEST(Histogram, RenderMentionsCounts)
{
    Histogram h(0.0, 1.0, 1);
    h.add(0.5);
    std::string text = h.render();
    EXPECT_NE(text.find(": 1"), std::string::npos);
}

TEST(Histogram, LossesMatchOutOfRangeBins)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.25);
    h.add(0.75);
    h.add(-1.0);
    h.add(2.0);
    h.add(3.0);
    klebsim::stats::LossCounts lc = h.losses();
    EXPECT_EQ(lc.accepted, 2u);
    EXPECT_EQ(lc.underflow, 1u);
    EXPECT_EQ(lc.overflow, 2u);
    EXPECT_EQ(lc.dropped, 0u);
    EXPECT_EQ(lc.total(), h.total());
    EXPECT_DOUBLE_EQ(lc.lossFraction(), 0.6);
}
