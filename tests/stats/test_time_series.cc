#include <gtest/gtest.h>

#include "stats/time_series.hh"

using namespace klebsim;
using stats::TimeSeries;

namespace
{

TimeSeries
makeSeries()
{
    TimeSeries ts({"inst", "miss"});
    ts.append(100, {10.0, 1.0});
    ts.append(200, {30.0, 4.0});
    ts.append(300, {60.0, 9.0});
    return ts;
}

} // namespace

TEST(TimeSeries, BasicShape)
{
    TimeSeries ts = makeSeries();
    EXPECT_EQ(ts.channels(), 2u);
    EXPECT_EQ(ts.size(), 3u);
    EXPECT_FALSE(ts.empty());
    EXPECT_EQ(ts.channelIndex("miss"), 1u);
    EXPECT_EQ(ts.timeAt(1), 200u);
    EXPECT_EQ(ts.valueAt(2, 0), 60.0);
}

TEST(TimeSeries, ChannelExtraction)
{
    TimeSeries ts = makeSeries();
    auto inst = ts.channel("inst");
    ASSERT_EQ(inst.size(), 3u);
    EXPECT_EQ(inst[0], 10.0);
    EXPECT_EQ(inst[2], 60.0);
    EXPECT_EQ(ts.channelSum(0), 100.0);
    EXPECT_NEAR(ts.channelMean(1), 14.0 / 3.0, 1e-12);
}

TEST(TimeSeries, Deltas)
{
    TimeSeries ts = makeSeries();
    auto d = ts.channelDeltas(0);
    ASSERT_EQ(d.size(), 3u);
    EXPECT_EQ(d[0], 10.0);
    EXPECT_EQ(d[1], 20.0);
    EXPECT_EQ(d[2], 30.0);
}

TEST(TimeSeries, Ratio)
{
    TimeSeries ts = makeSeries();
    auto r = ts.ratio(1, 0, 1000.0);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_NEAR(r[0], 100.0, 1e-9);  // 1/10*1000
    EXPECT_NEAR(r[2], 150.0, 1e-9);  // 9/60*1000
}

TEST(TimeSeries, SpanAndInterval)
{
    TimeSeries ts = makeSeries();
    EXPECT_EQ(ts.startTime(), 100u);
    EXPECT_EQ(ts.endTime(), 300u);
    EXPECT_EQ(ts.span(), 200u);
    EXPECT_NEAR(ts.meanInterval(), 100.0, 1e-12);
}

TEST(TimeSeries, EmptyMeanInterval)
{
    TimeSeries ts({"x"});
    EXPECT_EQ(ts.meanInterval(), 0.0);
    ts.append(5, {1.0});
    EXPECT_EQ(ts.meanInterval(), 0.0);
}

TEST(TimeSeries, Mpki)
{
    EXPECT_NEAR(stats::mpki(500.0, 100000.0), 5.0, 1e-12);
    EXPECT_EQ(stats::mpki(500.0, 0.0), 0.0);
}

TEST(TimeSeriesDeath, ArityMismatch)
{
    TimeSeries ts({"a", "b"});
    EXPECT_DEATH(ts.append(1, {1.0}), "arity");
}

TEST(TimeSeriesDeath, NonMonotonicTime)
{
    TimeSeries ts({"a"});
    ts.append(10, {1.0});
    EXPECT_DEATH(ts.append(5, {1.0}), "monotonic");
}
