#include <gtest/gtest.h>

#include <cstring>

#include "kernel/module.hh"
#include "kernel/system.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using klebsim::workload::computeSource;
using klebsim::workload::FixedWorkSource;

namespace
{

class EchoModule : public KernelModule
{
  public:
    std::string name() const override { return "echo"; }

    void init(Kernel &) override { ++inits; }
    void exitModule(Kernel &) override { ++exits; }

    long
    ioctl(Kernel &, Process &, std::uint32_t cmd,
          void *arg) override
    {
        lastCmd = cmd;
        if (arg)
            *static_cast<int *>(arg) += 1;
        return 42;
    }

    long
    read(Kernel &, Process &, void *buf, std::size_t len) override
    {
        if (buf && len >= 5)
            std::memcpy(buf, "data", 5);
        return 4;
    }

    int inits = 0;
    int exits = 0;
    std::uint32_t lastCmd = 0;
};

/** Service that performs one ioctl and one read. */
class CallerBehavior : public ServiceBehavior
{
  public:
    ServiceOp
    nextOp(Kernel &, Process &) override
    {
        switch (step_++) {
          case 0:
            return ServiceOp::makeSyscall(
                [this](Kernel &k, Process &me) {
                    ioctlRc = k.ioctl(me, "/dev/echo", 0x77, &arg);
                });
          case 1:
            return ServiceOp::makeSyscall(
                [this](Kernel &k, Process &me) {
                    readRc = k.readDev(me, "/dev/echo", buf,
                                       sizeof(buf));
                });
          default:
            return ServiceOp::makeExit();
        }
    }

    long ioctlRc = -99;
    long readRc = -99;
    int arg = 0;
    char buf[8] = {};

  private:
    int step_ = 0;
};

} // namespace

TEST(Modules, LoadInitUnloadExit)
{
    System sys;
    auto module = std::make_unique<EchoModule>();
    EchoModule *raw = module.get();
    sys.kernel().loadModule(std::move(module), "/dev/echo");
    EXPECT_EQ(raw->inits, 1);
    EXPECT_EQ(sys.kernel().moduleAt("/dev/echo"), raw);
    EXPECT_EQ(sys.kernel().moduleAt("/dev/nope"), nullptr);
    sys.kernel().unloadModule("/dev/echo");
    EXPECT_EQ(sys.kernel().moduleAt("/dev/echo"), nullptr);
}

TEST(Modules, IoctlAndReadThroughSyscalls)
{
    System sys;
    auto module = std::make_unique<EchoModule>();
    EchoModule *raw = module.get();
    sys.kernel().loadModule(std::move(module), "/dev/echo");

    CallerBehavior behavior;
    Process *proc =
        sys.kernel().createService("caller", &behavior, 0);
    sys.kernel().startProcess(proc);
    sys.run();

    EXPECT_EQ(behavior.ioctlRc, 42);
    EXPECT_EQ(behavior.arg, 1);
    EXPECT_EQ(raw->lastCmd, 0x77u);
    EXPECT_EQ(behavior.readRc, 4);
    EXPECT_STREQ(behavior.buf, "data");
}

TEST(Modules, IoctlOnMissingDeviceFails)
{
    System sys;
    CallerBehavior behavior;
    Process *proc =
        sys.kernel().createService("caller", &behavior, 0);
    sys.kernel().startProcess(proc);
    sys.run();
    EXPECT_EQ(behavior.ioctlRc, -1);
    EXPECT_EQ(behavior.readRc, -1);
}

TEST(Modules, SyscallsConsumeTime)
{
    CostModel costs;
    costs.costSigma = 0.0;
    costs.runSigma = 0.0;
    System sys(hw::MachineConfig::corei7_920(), 1, costs);
    auto module = std::make_unique<EchoModule>();
    sys.kernel().loadModule(std::move(module), "/dev/echo");

    CallerBehavior behavior;
    Process *proc =
        sys.kernel().createService("caller", &behavior, 0);
    sys.kernel().startProcess(proc);
    sys.run();
    // Two syscall ops (each the base syscall cost) plus two nested
    // kernel.ioctl/readDev charges: >= 4 syscall costs of lifetime.
    EXPECT_GE(proc->lifetime(), 4 * costs.syscall);
}

TEST(Modules, ChargeKernelWorkAdvancesCursor)
{
    CostModel costs;
    costs.costSigma = 0.0;
    costs.runSigma = 0.0;
    System sys(hw::MachineConfig::corei7_920(), 1, costs);
    sys.core(0).syncTo(sys.now());
    Tick before = sys.core(0).attributedUpTo();
    sys.kernel().chargeKernelWork(0, 10_us, 4096);
    EXPECT_EQ(sys.core(0).attributedUpTo(), before + 10_us);
}
