#include <gtest/gtest.h>

#include "kernel/system.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0; // deterministic costs for exact assertions
    return c;
}

/** Behavior that runs a fixed list of ops, then exits. */
class ScriptedBehavior : public ServiceBehavior
{
  public:
    explicit ScriptedBehavior(std::vector<ServiceOp> ops)
        : ops_(std::move(ops))
    {
    }

    ServiceOp
    nextOp(Kernel &, Process &) override
    {
        if (idx_ >= ops_.size())
            return ServiceOp::makeExit();
        return ops_[idx_++];
    }

  private:
    std::vector<ServiceOp> ops_;
    std::size_t idx_ = 0;
};

} // namespace

TEST(Scheduler, WorkloadRunsToCompletion)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    FixedWorkSource src = computeSource(10, 1000000, 2.0);
    Process *proc =
        sys.kernel().createWorkload("w", &src, 0);
    EXPECT_EQ(proc->state(), ProcState::created);
    sys.kernel().startProcess(proc);
    sys.run();
    EXPECT_EQ(proc->state(), ProcState::zombie);
    EXPECT_EQ(proc->execContext()->instructionsRetired(), 10000000u);
    // ~10 * 187 us of work plus one initial dispatch.
    EXPECT_NEAR(ticksToMs(proc->lifetime()), 1.873, 0.05);
}

TEST(Scheduler, PidsAndProcessTree)
{
    System sys;
    FixedWorkSource src = computeSource(1, 1000, 2.0);
    Process *a = sys.kernel().createWorkload("a", &src, 0);
    Process *b = sys.kernel().createWorkload("b", &src, 0, a->pid());
    Process *c = sys.kernel().createWorkload("c", &src, 0, b->pid());
    EXPECT_EQ(a->pid() + 1, b->pid());
    EXPECT_EQ(b->ppid(), a->pid());
    EXPECT_TRUE(sys.kernel().isDescendantOf(c->pid(), a->pid()));
    EXPECT_TRUE(sys.kernel().isDescendantOf(b->pid(), a->pid()));
    EXPECT_TRUE(sys.kernel().isDescendantOf(a->pid(), a->pid()));
    EXPECT_FALSE(sys.kernel().isDescendantOf(a->pid(), b->pid()));
    ASSERT_EQ(a->children().size(), 1u);
    EXPECT_EQ(a->children()[0], b->pid());
    EXPECT_EQ(sys.kernel().findProcess(c->pid()), c);
    EXPECT_EQ(sys.kernel().findProcess(9999), nullptr);
}

TEST(Scheduler, RoundRobinSharesCore)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    FixedWorkSource src_a = computeSource(40, 1000000, 2.0);
    FixedWorkSource src_b = computeSource(40, 1000000, 2.0);
    Process *a = sys.kernel().createWorkload("a", &src_a, 0);
    Process *b = sys.kernel().createWorkload("b", &src_b, 0);
    sys.kernel().startProcess(a);
    sys.kernel().startProcess(b);
    sys.run();
    EXPECT_EQ(a->state(), ProcState::zombie);
    EXPECT_EQ(b->state(), ProcState::zombie);
    // Interleaved on one core: both finish in roughly 2x the solo
    // time, and they context-switched every timeslice.
    EXPECT_GT(sys.kernel().contextSwitches(), 2u);
    // Each got ~7.5 ms of CPU; they end within one timeslice.
    Tick diff = a->exitTick() > b->exitTick()
                    ? a->exitTick() - b->exitTick()
                    : b->exitTick() - a->exitTick();
    EXPECT_LE(diff, 2 * quietCosts().timeslice);
}

TEST(Scheduler, SeparateCoresRunInParallel)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    FixedWorkSource src_a = computeSource(20, 1000000, 2.0);
    FixedWorkSource src_b = computeSource(20, 1000000, 2.0);
    Process *a = sys.kernel().createWorkload("a", &src_a, 0);
    Process *b = sys.kernel().createWorkload("b", &src_b, 1);
    sys.kernel().startProcess(a);
    sys.kernel().startProcess(b);
    sys.run();
    // No interference: both complete in solo time.
    EXPECT_NEAR(ticksToMs(a->lifetime()), 3.75, 0.1);
    EXPECT_NEAR(ticksToMs(b->lifetime()), 3.75, 0.1);
}

TEST(Scheduler, ContextSwitchesCostTime)
{
    CostModel costs = quietCosts();
    System solo(hw::MachineConfig::corei7_920(), 1, costs);
    FixedWorkSource src = computeSource(40, 1000000, 2.0);
    Process *p = solo.kernel().createWorkload("solo", &src, 0);
    solo.kernel().startProcess(p);
    solo.run();
    Tick solo_time = p->lifetime();

    System shared(hw::MachineConfig::corei7_920(), 1, costs);
    FixedWorkSource src_a = computeSource(40, 1000000, 2.0);
    FixedWorkSource src_b = computeSource(40, 1000000, 2.0);
    Process *a = shared.kernel().createWorkload("a", &src_a, 0);
    Process *b = shared.kernel().createWorkload("b", &src_b, 0);
    shared.kernel().startProcess(a);
    shared.kernel().startProcess(b);
    shared.run();

    Tick last = std::max(a->exitTick(), b->exitTick());
    // Two interleaved workloads take at least 2x solo plus switch
    // costs.
    EXPECT_GT(last, 2 * solo_time);
}

TEST(Scheduler, SwitchHooksFire)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    FixedWorkSource src = computeSource(3, 1000000, 2.0);
    Process *p = sys.kernel().createWorkload("w", &src, 0);

    std::vector<std::pair<Pid, Pid>> switches;
    sys.kernel().registerSwitchHook(
        [&](Process *prev, Process *next, CoreId) {
            switches.emplace_back(prev ? prev->pid() : -1,
                                  next ? next->pid() : -1);
        });
    sys.kernel().startProcess(p);
    sys.run();
    // First: idle -> p; last: p -> idle (exit).
    ASSERT_GE(switches.size(), 2u);
    EXPECT_EQ(switches.front().first, -1);
    EXPECT_EQ(switches.front().second, p->pid());
    EXPECT_EQ(switches.back().first, p->pid());
    EXPECT_EQ(switches.back().second, -1);
}

TEST(Scheduler, ExitHooksFire)
{
    System sys;
    FixedWorkSource src = computeSource(1, 1000, 2.0);
    Process *p = sys.kernel().createWorkload("w", &src, 0);
    Pid exited = invalidPid;
    sys.kernel().registerExitHook(
        [&](Process &proc) { exited = proc.pid(); });
    sys.kernel().startProcess(p);
    sys.run();
    EXPECT_EQ(exited, p->pid());
}

TEST(Scheduler, OnExitWaiters)
{
    System sys;
    FixedWorkSource src = computeSource(1, 1000, 2.0);
    Process *p = sys.kernel().createWorkload("w", &src, 0);
    int called = 0;
    sys.kernel().onExit(p->pid(), [&] { ++called; });
    sys.kernel().startProcess(p);
    sys.run();
    EXPECT_EQ(called, 1);
    // Registration after exit fires immediately.
    sys.kernel().onExit(p->pid(), [&] { ++called; });
    EXPECT_EQ(called, 2);
}

TEST(Scheduler, ServiceOpsExecuteInOrder)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    std::vector<Tick> syscall_at;
    ScriptedBehavior behavior({
        ServiceOp::makeCompute(100_us),
        ServiceOp::makeSleep(1_ms),
        ServiceOp::makeSyscall(
            [&](Kernel &k, Process &) {
                syscall_at.push_back(k.now());
            }),
    });
    Process *s = sys.kernel().createService("svc", &behavior, 0);
    sys.kernel().startProcess(s);
    sys.run();
    EXPECT_EQ(s->state(), ProcState::zombie);
    ASSERT_EQ(syscall_at.size(), 1u);
    // compute(100us) + sleep(1ms) puts the syscall past 1.1 ms.
    EXPECT_GE(syscall_at[0], 1100_us);
    EXPECT_LE(syscall_at[0], 1250_us);
}

TEST(Scheduler, WakeupPreemptsWorkload)
{
    CostModel costs = quietCosts();
    costs.wakeupPreempts = true;
    System sys(hw::MachineConfig::corei7_920(), 1, costs);

    FixedWorkSource src = computeSource(40, 1000000, 2.0);
    Process *w = sys.kernel().createWorkload("w", &src, 0);

    std::vector<Tick> service_ran_at;
    ScriptedBehavior behavior({
        ServiceOp::makeSleep(1_ms),
        ServiceOp::makeCompute(10_us),
        ServiceOp::makeSyscall([&](Kernel &k, Process &) {
            service_ran_at.push_back(k.now());
        }),
    });
    Process *s = sys.kernel().createService("svc", &behavior, 0);
    sys.kernel().startProcess(s);
    sys.kernel().startProcess(w);
    sys.run();

    ASSERT_EQ(service_ran_at.size(), 1u);
    // The service woke at 1 ms, long before the workload's ~7.5 ms
    // of work was done, and ran immediately (preemption) rather
    // than waiting for the workload to finish.
    EXPECT_LT(service_ran_at[0], 2_ms);
    EXPECT_EQ(w->state(), ProcState::zombie);
}

TEST(Scheduler, NoPreemptionWhenDisabled)
{
    CostModel costs = quietCosts();
    costs.wakeupPreempts = false;
    System sys(hw::MachineConfig::corei7_920(), 1, costs);

    // One long chunk (not divisible): the workload holds the core
    // until its slice ends.
    FixedWorkSource src = computeSource(1, 40000000, 2.0); // ~7.5ms
    Process *w = sys.kernel().createWorkload("w", &src, 0);

    std::vector<Tick> service_ran_at;
    ScriptedBehavior behavior({
        ServiceOp::makeSleep(1_ms),
        ServiceOp::makeSyscall([&](Kernel &k, Process &) {
            service_ran_at.push_back(k.now());
        }),
    });
    Process *s = sys.kernel().createService("svc", &behavior, 0);
    sys.kernel().startProcess(s);
    sys.kernel().startProcess(w);
    sys.run();

    ASSERT_EQ(service_ran_at.size(), 1u);
    // Without preemption the service waits for the slice boundary
    // (4 ms timeslice).
    EXPECT_GE(service_ran_at[0], 4_ms);
}

TEST(Scheduler, KillReadyProcess)
{
    System sys;
    FixedWorkSource src_a = computeSource(4, 10000000, 2.0);
    FixedWorkSource src_b = computeSource(4, 10000000, 2.0);
    Process *a = sys.kernel().createWorkload("a", &src_a, 0);
    Process *b = sys.kernel().createWorkload("b", &src_b, 0);
    sys.kernel().startProcess(a);
    sys.kernel().startProcess(b); // b sits in the run queue
    sys.kernel().kill(b);
    EXPECT_EQ(b->state(), ProcState::zombie);
    sys.run();
    EXPECT_EQ(a->state(), ProcState::zombie);
    EXPECT_EQ(b->execContext()->instructionsRetired(), 0u);
}

TEST(Scheduler, KillSleepingService)
{
    System sys;
    ScriptedBehavior behavior({ServiceOp::makeSleep(100_ms)});
    Process *s = sys.kernel().createService("svc", &behavior, 0);
    sys.kernel().startProcess(s);
    sys.run(1_ms);
    EXPECT_EQ(s->state(), ProcState::sleeping);
    sys.kernel().kill(s);
    EXPECT_EQ(s->state(), ProcState::zombie);
    sys.run(); // the cancelled alarm must not fire
    EXPECT_EQ(s->state(), ProcState::zombie);
}

TEST(Scheduler, BlockAndWakeChannel)
{
    System sys;
    WaitChannel channel;
    std::vector<Tick> resumed_at;
    ScriptedBehavior blocker({
        ServiceOp::makeBlock(&channel),
        ServiceOp::makeSyscall([&](Kernel &k, Process &) {
            resumed_at.push_back(k.now());
        }),
    });
    Process *s = sys.kernel().createService("blocker", &blocker, 0);
    sys.kernel().startProcess(s);
    sys.run(1_ms);
    EXPECT_EQ(s->state(), ProcState::blocked);

    ScriptedBehavior waker({
        ServiceOp::makeSleep(5_ms),
        ServiceOp::makeSyscall([&](Kernel &k, Process &) {
            k.wakeAll(channel);
        }),
    });
    Process *w = sys.kernel().createService("waker", &waker, 1);
    sys.kernel().startProcess(w);
    sys.run();
    ASSERT_EQ(resumed_at.size(), 1u);
    EXPECT_GE(resumed_at[0], 6_ms);
    EXPECT_EQ(s->state(), ProcState::zombie);
}

TEST(Scheduler, CtxSwitchEventCounted)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    hw::Pmu &pmu = sys.core(0).pmu();
    pmu.programCounter(0, hw::HwEvent::ctxSwitches, true, true);
    pmu.globalEnableAll();
    FixedWorkSource src = computeSource(2, 1000000, 2.0);
    Process *p = sys.kernel().createWorkload("w", &src, 0);
    sys.kernel().startProcess(p);
    sys.run();
    EXPECT_EQ(pmu.counterValue(0), sys.kernel().contextSwitches());
    EXPECT_GE(pmu.counterValue(0), 2u);
}
