#include <gtest/gtest.h>

#include <memory>

#include "kernel/system.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

/** Sweep: number of co-scheduled workloads on one core. */
class SchedulerProperty : public ::testing::TestWithParam<int>
{
};

} // namespace

TEST_P(SchedulerProperty, AllProcessesCompleteWithExactWork)
{
    int n = GetParam();
    System sys(hw::MachineConfig::corei7_920(), 19, quietCosts());
    std::vector<std::unique_ptr<FixedWorkSource>> sources;
    std::vector<Process *> procs;
    for (int i = 0; i < n; ++i) {
        sources.push_back(std::make_unique<FixedWorkSource>(
            computeSource(8, 1000000, 2.0)));
        procs.push_back(sys.kernel().createWorkload(
            "w" + std::to_string(i), sources.back().get(), 0));
        sys.kernel().startProcess(procs.back());
    }
    sys.run();
    for (Process *p : procs) {
        ASSERT_EQ(p->state(), ProcState::zombie);
        EXPECT_EQ(p->execContext()->instructionsRetired(),
                  8000000u);
    }
}

TEST_P(SchedulerProperty, CpuTimeConservation)
{
    int n = GetParam();
    System sys(hw::MachineConfig::corei7_920(), 20, quietCosts());
    std::vector<std::unique_ptr<FixedWorkSource>> sources;
    std::vector<Process *> procs;
    for (int i = 0; i < n; ++i) {
        sources.push_back(std::make_unique<FixedWorkSource>(
            computeSource(8, 1000000, 2.0)));
        procs.push_back(sys.kernel().createWorkload(
            "w" + std::to_string(i), sources.back().get(), 0));
        sys.kernel().startProcess(procs.back());
    }
    sys.run();

    // Sum of per-process CPU time + kernel overhead accounts for
    // the core's busy time; no time is double-attributed or lost.
    Tick proc_cpu = 0;
    Tick last_exit = 0;
    for (Process *p : procs) {
        proc_cpu += p->execContext()->cpuTime();
        last_exit = std::max(last_exit, p->exitTick());
    }
    Tick busy = sys.core(0).busyTime();
    EXPECT_LE(proc_cpu, busy);
    // The switch away from the last exiting process is charged to
    // the core just after its exit tick.
    EXPECT_LE(busy, last_exit + 2 * quietCosts().contextSwitch);
    // Kernel overhead (switches) is bounded: < 2% of busy time
    // for these chunk sizes.
    EXPECT_LT(static_cast<double>(busy - proc_cpu),
              0.02 * static_cast<double>(busy));
}

TEST_P(SchedulerProperty, FairnessWithinTimeslice)
{
    int n = GetParam();
    if (n < 2)
        GTEST_SKIP() << "fairness needs >= 2 processes";
    System sys(hw::MachineConfig::corei7_920(), 21, quietCosts());
    std::vector<std::unique_ptr<FixedWorkSource>> sources;
    std::vector<Process *> procs;
    for (int i = 0; i < n; ++i) {
        sources.push_back(std::make_unique<FixedWorkSource>(
            computeSource(8, 1000000, 2.0)));
        procs.push_back(sys.kernel().createWorkload(
            "w" + std::to_string(i), sources.back().get(), 0));
        sys.kernel().startProcess(procs.back());
    }
    sys.run();

    // Round robin: identical work means exits cluster within ~one
    // timeslice round of each other.
    Tick min_exit = maxTick, max_exit = 0;
    for (Process *p : procs) {
        min_exit = std::min(min_exit, p->exitTick());
        max_exit = std::max(max_exit, p->exitTick());
    }
    EXPECT_LE(max_exit - min_exit,
              static_cast<Tick>(n) * quietCosts().timeslice);
}

INSTANTIATE_TEST_SUITE_P(ProcessCounts, SchedulerProperty,
                         ::testing::Values(1, 2, 3, 5, 8),
                         [](const ::testing::TestParamInfo<int> &i) {
                             return "n" + std::to_string(i.param);
                         });
