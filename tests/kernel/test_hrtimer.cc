#include <gtest/gtest.h>

#include "hw/timer_device.hh"
#include "kernel/system.hh"
#include "workload/microbench.hh"

using namespace klebsim;
using namespace klebsim::kernel;
using namespace klebsim::ticks_literals;
using klebsim::workload::FixedWorkSource;
using klebsim::workload::computeSource;

namespace
{

CostModel
quietCosts()
{
    CostModel c;
    c.costSigma = 0.0;
    c.runSigma = 0.0;
    return c;
}

} // namespace

TEST(HrTimer, PeriodicFiresAtRate)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    std::vector<Tick> fired;
    HrTimer *timer = sys.kernel().createHrTimer(
        "t", 0, [&] { fired.push_back(sys.now()); }, usToTicks(1),
        0);
    timer->setJitterModel(hw::TimerJitterModel::ideal());
    timer->startPeriodic(100_us);
    sys.run(1050_us);
    timer->cancel();
    ASSERT_EQ(fired.size(), 10u);
    for (std::size_t i = 0; i < fired.size(); ++i)
        EXPECT_EQ(fired[i], (i + 1) * 100_us);
    EXPECT_EQ(timer->expiries(), 10u);
}

TEST(HrTimer, JitterDoesNotDrift)
{
    System sys(hw::MachineConfig::corei7_920(), 7, quietCosts());
    std::vector<Tick> fired;
    HrTimer *timer = sys.kernel().createHrTimer(
        "t", 0, [&] { fired.push_back(sys.now()); }, usToTicks(1),
        0);
    // Default jitter model active; deadline-based re-arm keeps the
    // long-run rate exact (hrtimer_forward semantics).
    timer->startPeriodic(100_us);
    sys.run(100 * 100_us + 50_us);
    timer->cancel();
    ASSERT_GE(fired.size(), 99u);
    // The i-th expiry stays within max jitter of its deadline: no
    // accumulation.
    for (std::size_t i = 0; i < fired.size(); ++i) {
        Tick deadline = (i + 1) * 100_us;
        ASSERT_GE(fired[i], deadline);
        ASSERT_LE(fired[i] - deadline, usToTicks(25));
    }
}

TEST(HrTimer, OneShot)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    std::vector<Tick> fired;
    HrTimer *timer = sys.kernel().createHrTimer(
        "t", 0, [&] { fired.push_back(sys.now()); }, 0, 0);
    timer->setJitterModel(hw::TimerJitterModel::ideal());
    timer->startOneShot(3_ms);
    sys.run(10_ms);
    ASSERT_EQ(fired.size(), 1u);
    EXPECT_EQ(fired[0], 3_ms);
    EXPECT_FALSE(timer->active());
}

TEST(HrTimer, CancelStopsFiring)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    int fired = 0;
    HrTimer *timer = sys.kernel().createHrTimer(
        "t", 0, [&] { ++fired; }, 0, 0);
    timer->setJitterModel(hw::TimerJitterModel::ideal());
    timer->startPeriodic(1_ms);
    sys.run(2500_us);
    EXPECT_EQ(fired, 2);
    timer->cancel();
    sys.run(10_ms);
    EXPECT_EQ(fired, 2);
}

TEST(HrTimer, InterruptStealsTimeFromWorkload)
{
    CostModel costs = quietCosts();
    System sys(hw::MachineConfig::corei7_920(), 1, costs);

    // Baseline: no timer.
    FixedWorkSource src_base = computeSource(20, 1000000, 2.0);
    Process *base =
        sys.kernel().createWorkload("base", &src_base, 1);
    sys.kernel().startProcess(base);

    // Same work on core 0 with a 100 us timer whose handler costs
    // 5 us: ~5% slowdown expected.
    FixedWorkSource src_t = computeSource(20, 1000000, 2.0);
    Process *timed = sys.kernel().createWorkload("timed", &src_t, 0);
    HrTimer *timer = sys.kernel().createHrTimer(
        "t", 0, [] {}, usToTicks(5), 0);
    timer->setJitterModel(hw::TimerJitterModel::ideal());
    timer->startPeriodic(100_us);
    sys.kernel().startProcess(timed);

    sys.run(50_ms);
    timer->cancel();
    sys.run();

    ASSERT_EQ(base->state(), ProcState::zombie);
    ASSERT_EQ(timed->state(), ProcState::zombie);
    double slowdown =
        static_cast<double>(timed->lifetime()) /
        static_cast<double>(base->lifetime());
    // interruptEntry (0.6us) + handler (5us) every 100us ~= 5.6%.
    EXPECT_GT(slowdown, 1.04);
    EXPECT_LT(slowdown, 1.08);
}

TEST(HrTimer, HwInterruptsCounted)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    hw::Pmu &pmu = sys.core(0).pmu();
    pmu.programCounter(0, hw::HwEvent::hwInterrupts, true, true);
    pmu.globalEnableAll();
    HrTimer *timer =
        sys.kernel().createHrTimer("t", 0, [] {}, 0, 0);
    timer->setJitterModel(hw::TimerJitterModel::ideal());
    timer->startPeriodic(1_ms);
    sys.run(5500_us);
    timer->cancel();
    EXPECT_EQ(pmu.counterValue(0), 5u);
}

TEST(HrTimer, SetPeriodPreservesArmedDeadline)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    std::vector<Tick> fired;
    HrTimer *timer = sys.kernel().createHrTimer(
        "t", 0, [&] { fired.push_back(sys.now()); }, 0, 0);
    timer->setJitterModel(hw::TimerJitterModel::ideal());
    timer->startPeriodic(100_us);
    sys.run(250_us); // expiries at 100 us and 200 us
    // Reprogram mid-flight: the sample armed for 300 us must still
    // land at 300 us (the in-flight deadline is never moved), and
    // only expiries after it space out at the new period.
    timer->setPeriod(400_us);
    sys.run(1250_us);
    timer->cancel();
    ASSERT_EQ(fired.size(), 5u);
    EXPECT_EQ(fired[0], 100_us);
    EXPECT_EQ(fired[1], 200_us);
    EXPECT_EQ(fired[2], 300_us);
    EXPECT_EQ(fired[3], 700_us);
    EXPECT_EQ(fired[4], 1100_us);
}

TEST(HrTimer, SetPeriodSpeedUp)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    std::vector<Tick> fired;
    HrTimer *timer = sys.kernel().createHrTimer(
        "t", 0, [&] { fired.push_back(sys.now()); }, 0, 0);
    timer->setJitterModel(hw::TimerJitterModel::ideal());
    timer->startPeriodic(1_ms);
    sys.run(1500_us); // one expiry at 1 ms, next armed for 2 ms
    timer->setPeriod(100_us);
    sys.run(2550_us);
    timer->cancel();
    ASSERT_EQ(fired.size(), 7u);
    EXPECT_EQ(fired[0], 1_ms);
    EXPECT_EQ(fired[1], 2_ms);
    for (std::size_t i = 2; i < fired.size(); ++i)
        EXPECT_EQ(fired[i], 2_ms + (i - 1) * 100_us);
}

TEST(HrTimer, OverrunStillFires)
{
    System sys(hw::MachineConfig::corei7_920(), 1, quietCosts());
    int fired = 0;
    // Handler takes longer than the period: the timer must keep
    // going (late) rather than wedging.
    HrTimer *timer = sys.kernel().createHrTimer(
        "t", 0, [&] { ++fired; }, usToTicks(150), 0);
    timer->startPeriodic(100_us);
    sys.run(2_ms);
    timer->cancel();
    EXPECT_GE(fired, 10);
}
