# Empty dependencies file for fig5_docker_mpki.
# This may be replaced when dependencies are built.
