file(REMOVE_RECURSE
  "CMakeFiles/fig5_docker_mpki.dir/fig5_docker_mpki.cc.o"
  "CMakeFiles/fig5_docker_mpki.dir/fig5_docker_mpki.cc.o.d"
  "fig5_docker_mpki"
  "fig5_docker_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_docker_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
