# Empty compiler generated dependencies file for abl_buffering.
# This may be replaced when dependencies are built.
