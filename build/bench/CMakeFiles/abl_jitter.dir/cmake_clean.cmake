file(REMOVE_RECURSE
  "CMakeFiles/abl_jitter.dir/abl_jitter.cc.o"
  "CMakeFiles/abl_jitter.dir/abl_jitter.cc.o.d"
  "abl_jitter"
  "abl_jitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_jitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
