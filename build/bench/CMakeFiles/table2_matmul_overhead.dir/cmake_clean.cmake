file(REMOVE_RECURSE
  "CMakeFiles/table2_matmul_overhead.dir/table2_matmul_overhead.cc.o"
  "CMakeFiles/table2_matmul_overhead.dir/table2_matmul_overhead.cc.o.d"
  "table2_matmul_overhead"
  "table2_matmul_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_matmul_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
