
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/abl_multiplexing.cc" "bench/CMakeFiles/abl_multiplexing.dir/abl_multiplexing.cc.o" "gcc" "bench/CMakeFiles/abl_multiplexing.dir/abl_multiplexing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tools/CMakeFiles/kleb_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/kleb/CMakeFiles/kleb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/kleb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/kleb_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/kleb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kleb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kleb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kleb_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
