# Empty dependencies file for abl_multiplexing.
# This may be replaced when dependencies are built.
