file(REMOVE_RECURSE
  "CMakeFiles/abl_multiplexing.dir/abl_multiplexing.cc.o"
  "CMakeFiles/abl_multiplexing.dir/abl_multiplexing.cc.o.d"
  "abl_multiplexing"
  "abl_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
