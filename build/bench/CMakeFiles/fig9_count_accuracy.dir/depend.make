# Empty dependencies file for fig9_count_accuracy.
# This may be replaced when dependencies are built.
