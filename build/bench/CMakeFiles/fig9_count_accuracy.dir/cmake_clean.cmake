file(REMOVE_RECURSE
  "CMakeFiles/fig9_count_accuracy.dir/fig9_count_accuracy.cc.o"
  "CMakeFiles/fig9_count_accuracy.dir/fig9_count_accuracy.cc.o.d"
  "fig9_count_accuracy"
  "fig9_count_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_count_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
