# Empty compiler generated dependencies file for table1_linpack_gflops.
# This may be replaced when dependencies are built.
