file(REMOVE_RECURSE
  "CMakeFiles/table1_linpack_gflops.dir/table1_linpack_gflops.cc.o"
  "CMakeFiles/table1_linpack_gflops.dir/table1_linpack_gflops.cc.o.d"
  "table1_linpack_gflops"
  "table1_linpack_gflops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_linpack_gflops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
