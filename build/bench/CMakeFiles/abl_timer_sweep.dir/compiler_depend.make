# Empty compiler generated dependencies file for abl_timer_sweep.
# This may be replaced when dependencies are built.
