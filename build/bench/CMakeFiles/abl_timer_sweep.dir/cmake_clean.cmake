file(REMOVE_RECURSE
  "CMakeFiles/abl_timer_sweep.dir/abl_timer_sweep.cc.o"
  "CMakeFiles/abl_timer_sweep.dir/abl_timer_sweep.cc.o.d"
  "abl_timer_sweep"
  "abl_timer_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_timer_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
