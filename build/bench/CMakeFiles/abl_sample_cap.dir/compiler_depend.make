# Empty compiler generated dependencies file for abl_sample_cap.
# This may be replaced when dependencies are built.
