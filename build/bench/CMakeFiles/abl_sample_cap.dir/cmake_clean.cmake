file(REMOVE_RECURSE
  "CMakeFiles/abl_sample_cap.dir/abl_sample_cap.cc.o"
  "CMakeFiles/abl_sample_cap.dir/abl_sample_cap.cc.o.d"
  "abl_sample_cap"
  "abl_sample_cap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_sample_cap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
