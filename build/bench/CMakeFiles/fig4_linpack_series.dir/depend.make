# Empty dependencies file for fig4_linpack_series.
# This may be replaced when dependencies are built.
