file(REMOVE_RECURSE
  "CMakeFiles/fig4_linpack_series.dir/fig4_linpack_series.cc.o"
  "CMakeFiles/fig4_linpack_series.dir/fig4_linpack_series.cc.o.d"
  "fig4_linpack_series"
  "fig4_linpack_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_linpack_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
