file(REMOVE_RECURSE
  "CMakeFiles/fig7_meltdown_series.dir/fig7_meltdown_series.cc.o"
  "CMakeFiles/fig7_meltdown_series.dir/fig7_meltdown_series.cc.o.d"
  "fig7_meltdown_series"
  "fig7_meltdown_series.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_meltdown_series.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
