file(REMOVE_RECURSE
  "CMakeFiles/fig6_meltdown_counts.dir/fig6_meltdown_counts.cc.o"
  "CMakeFiles/fig6_meltdown_counts.dir/fig6_meltdown_counts.cc.o.d"
  "fig6_meltdown_counts"
  "fig6_meltdown_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_meltdown_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
