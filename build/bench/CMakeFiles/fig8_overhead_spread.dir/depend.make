# Empty dependencies file for fig8_overhead_spread.
# This may be replaced when dependencies are built.
