file(REMOVE_RECURSE
  "CMakeFiles/fig8_overhead_spread.dir/fig8_overhead_spread.cc.o"
  "CMakeFiles/fig8_overhead_spread.dir/fig8_overhead_spread.cc.o.d"
  "fig8_overhead_spread"
  "fig8_overhead_spread.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_overhead_spread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
