
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/base/test_csv.cc" "tests/CMakeFiles/kleb_tests.dir/base/test_csv.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/base/test_csv.cc.o.d"
  "/root/repo/tests/base/test_intmath.cc" "tests/CMakeFiles/kleb_tests.dir/base/test_intmath.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/base/test_intmath.cc.o.d"
  "/root/repo/tests/base/test_random.cc" "tests/CMakeFiles/kleb_tests.dir/base/test_random.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/base/test_random.cc.o.d"
  "/root/repo/tests/base/test_ring_buffer.cc" "tests/CMakeFiles/kleb_tests.dir/base/test_ring_buffer.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/base/test_ring_buffer.cc.o.d"
  "/root/repo/tests/base/test_str.cc" "tests/CMakeFiles/kleb_tests.dir/base/test_str.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/base/test_str.cc.o.d"
  "/root/repo/tests/hw/test_attribution_properties.cc" "tests/CMakeFiles/kleb_tests.dir/hw/test_attribution_properties.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/hw/test_attribution_properties.cc.o.d"
  "/root/repo/tests/hw/test_cache.cc" "tests/CMakeFiles/kleb_tests.dir/hw/test_cache.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/hw/test_cache.cc.o.d"
  "/root/repo/tests/hw/test_cache_properties.cc" "tests/CMakeFiles/kleb_tests.dir/hw/test_cache_properties.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/hw/test_cache_properties.cc.o.d"
  "/root/repo/tests/hw/test_cpu_core.cc" "tests/CMakeFiles/kleb_tests.dir/hw/test_cpu_core.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/hw/test_cpu_core.cc.o.d"
  "/root/repo/tests/hw/test_machine_config.cc" "tests/CMakeFiles/kleb_tests.dir/hw/test_machine_config.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/hw/test_machine_config.cc.o.d"
  "/root/repo/tests/hw/test_mem_hierarchy.cc" "tests/CMakeFiles/kleb_tests.dir/hw/test_mem_hierarchy.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/hw/test_mem_hierarchy.cc.o.d"
  "/root/repo/tests/hw/test_msr.cc" "tests/CMakeFiles/kleb_tests.dir/hw/test_msr.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/hw/test_msr.cc.o.d"
  "/root/repo/tests/hw/test_perf_event.cc" "tests/CMakeFiles/kleb_tests.dir/hw/test_perf_event.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/hw/test_perf_event.cc.o.d"
  "/root/repo/tests/hw/test_pmu.cc" "tests/CMakeFiles/kleb_tests.dir/hw/test_pmu.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/hw/test_pmu.cc.o.d"
  "/root/repo/tests/hw/test_timer_device.cc" "tests/CMakeFiles/kleb_tests.dir/hw/test_timer_device.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/hw/test_timer_device.cc.o.d"
  "/root/repo/tests/integration/test_accuracy.cc" "tests/CMakeFiles/kleb_tests.dir/integration/test_accuracy.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/integration/test_accuracy.cc.o.d"
  "/root/repo/tests/integration/test_case_studies.cc" "tests/CMakeFiles/kleb_tests.dir/integration/test_case_studies.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/integration/test_case_studies.cc.o.d"
  "/root/repo/tests/integration/test_end_to_end.cc" "tests/CMakeFiles/kleb_tests.dir/integration/test_end_to_end.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/integration/test_end_to_end.cc.o.d"
  "/root/repo/tests/kernel/test_hrtimer.cc" "tests/CMakeFiles/kleb_tests.dir/kernel/test_hrtimer.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/kernel/test_hrtimer.cc.o.d"
  "/root/repo/tests/kernel/test_modules.cc" "tests/CMakeFiles/kleb_tests.dir/kernel/test_modules.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/kernel/test_modules.cc.o.d"
  "/root/repo/tests/kernel/test_scheduler.cc" "tests/CMakeFiles/kleb_tests.dir/kernel/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/kernel/test_scheduler.cc.o.d"
  "/root/repo/tests/kernel/test_scheduler_properties.cc" "tests/CMakeFiles/kleb_tests.dir/kernel/test_scheduler_properties.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/kernel/test_scheduler_properties.cc.o.d"
  "/root/repo/tests/kleb/test_failure_injection.cc" "tests/CMakeFiles/kleb_tests.dir/kleb/test_failure_injection.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/kleb/test_failure_injection.cc.o.d"
  "/root/repo/tests/kleb/test_kleb_module.cc" "tests/CMakeFiles/kleb_tests.dir/kleb/test_kleb_module.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/kleb/test_kleb_module.cc.o.d"
  "/root/repo/tests/kleb/test_kleb_properties.cc" "tests/CMakeFiles/kleb_tests.dir/kleb/test_kleb_properties.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/kleb/test_kleb_properties.cc.o.d"
  "/root/repo/tests/kleb/test_safety.cc" "tests/CMakeFiles/kleb_tests.dir/kleb/test_safety.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/kleb/test_safety.cc.o.d"
  "/root/repo/tests/kleb/test_sequential.cc" "tests/CMakeFiles/kleb_tests.dir/kleb/test_sequential.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/kleb/test_sequential.cc.o.d"
  "/root/repo/tests/kleb/test_session.cc" "tests/CMakeFiles/kleb_tests.dir/kleb/test_session.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/kleb/test_session.cc.o.d"
  "/root/repo/tests/sim/test_clock_domain.cc" "tests/CMakeFiles/kleb_tests.dir/sim/test_clock_domain.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/sim/test_clock_domain.cc.o.d"
  "/root/repo/tests/sim/test_event_queue.cc" "tests/CMakeFiles/kleb_tests.dir/sim/test_event_queue.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/sim/test_event_queue.cc.o.d"
  "/root/repo/tests/stats/test_histogram.cc" "tests/CMakeFiles/kleb_tests.dir/stats/test_histogram.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/stats/test_histogram.cc.o.d"
  "/root/repo/tests/stats/test_summary.cc" "tests/CMakeFiles/kleb_tests.dir/stats/test_summary.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/stats/test_summary.cc.o.d"
  "/root/repo/tests/stats/test_time_series.cc" "tests/CMakeFiles/kleb_tests.dir/stats/test_time_series.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/stats/test_time_series.cc.o.d"
  "/root/repo/tests/tools/test_harness.cc" "tests/CMakeFiles/kleb_tests.dir/tools/test_harness.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/tools/test_harness.cc.o.d"
  "/root/repo/tests/tools/test_instrumented.cc" "tests/CMakeFiles/kleb_tests.dir/tools/test_instrumented.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/tools/test_instrumented.cc.o.d"
  "/root/repo/tests/tools/test_multiplex.cc" "tests/CMakeFiles/kleb_tests.dir/tools/test_multiplex.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/tools/test_multiplex.cc.o.d"
  "/root/repo/tests/tools/test_perf.cc" "tests/CMakeFiles/kleb_tests.dir/tools/test_perf.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/tools/test_perf.cc.o.d"
  "/root/repo/tests/tools/test_task_pmu.cc" "tests/CMakeFiles/kleb_tests.dir/tools/test_task_pmu.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/tools/test_task_pmu.cc.o.d"
  "/root/repo/tests/workload/test_calibration_guards.cc" "tests/CMakeFiles/kleb_tests.dir/workload/test_calibration_guards.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/workload/test_calibration_guards.cc.o.d"
  "/root/repo/tests/workload/test_docker.cc" "tests/CMakeFiles/kleb_tests.dir/workload/test_docker.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/workload/test_docker.cc.o.d"
  "/root/repo/tests/workload/test_docker_catalog.cc" "tests/CMakeFiles/kleb_tests.dir/workload/test_docker_catalog.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/workload/test_docker_catalog.cc.o.d"
  "/root/repo/tests/workload/test_meltdown.cc" "tests/CMakeFiles/kleb_tests.dir/workload/test_meltdown.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/workload/test_meltdown.cc.o.d"
  "/root/repo/tests/workload/test_meltdown_properties.cc" "tests/CMakeFiles/kleb_tests.dir/workload/test_meltdown_properties.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/workload/test_meltdown_properties.cc.o.d"
  "/root/repo/tests/workload/test_named_workloads.cc" "tests/CMakeFiles/kleb_tests.dir/workload/test_named_workloads.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/workload/test_named_workloads.cc.o.d"
  "/root/repo/tests/workload/test_phase_workload.cc" "tests/CMakeFiles/kleb_tests.dir/workload/test_phase_workload.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/workload/test_phase_workload.cc.o.d"
  "/root/repo/tests/workload/test_streams.cc" "tests/CMakeFiles/kleb_tests.dir/workload/test_streams.cc.o" "gcc" "tests/CMakeFiles/kleb_tests.dir/workload/test_streams.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tools/CMakeFiles/kleb_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/kleb/CMakeFiles/kleb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/kleb_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/kleb_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/kleb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kleb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kleb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kleb_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
