# Empty compiler generated dependencies file for kleb_tests.
# This may be replaced when dependencies are built.
