file(REMOVE_RECURSE
  "CMakeFiles/kleb_base.dir/csv.cc.o"
  "CMakeFiles/kleb_base.dir/csv.cc.o.d"
  "CMakeFiles/kleb_base.dir/logging.cc.o"
  "CMakeFiles/kleb_base.dir/logging.cc.o.d"
  "CMakeFiles/kleb_base.dir/random.cc.o"
  "CMakeFiles/kleb_base.dir/random.cc.o.d"
  "CMakeFiles/kleb_base.dir/str.cc.o"
  "CMakeFiles/kleb_base.dir/str.cc.o.d"
  "libkleb_base.a"
  "libkleb_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kleb_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
