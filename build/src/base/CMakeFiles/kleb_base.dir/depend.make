# Empty dependencies file for kleb_base.
# This may be replaced when dependencies are built.
