file(REMOVE_RECURSE
  "libkleb_base.a"
)
