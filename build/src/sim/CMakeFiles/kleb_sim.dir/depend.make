# Empty dependencies file for kleb_sim.
# This may be replaced when dependencies are built.
