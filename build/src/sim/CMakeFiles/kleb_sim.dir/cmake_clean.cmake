file(REMOVE_RECURSE
  "CMakeFiles/kleb_sim.dir/event_queue.cc.o"
  "CMakeFiles/kleb_sim.dir/event_queue.cc.o.d"
  "libkleb_sim.a"
  "libkleb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kleb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
