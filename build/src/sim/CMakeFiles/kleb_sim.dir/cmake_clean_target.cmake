file(REMOVE_RECURSE
  "libkleb_sim.a"
)
