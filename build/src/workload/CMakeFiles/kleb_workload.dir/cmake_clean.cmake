file(REMOVE_RECURSE
  "CMakeFiles/kleb_workload.dir/address_streams.cc.o"
  "CMakeFiles/kleb_workload.dir/address_streams.cc.o.d"
  "CMakeFiles/kleb_workload.dir/docker.cc.o"
  "CMakeFiles/kleb_workload.dir/docker.cc.o.d"
  "CMakeFiles/kleb_workload.dir/linpack.cc.o"
  "CMakeFiles/kleb_workload.dir/linpack.cc.o.d"
  "CMakeFiles/kleb_workload.dir/matmul.cc.o"
  "CMakeFiles/kleb_workload.dir/matmul.cc.o.d"
  "CMakeFiles/kleb_workload.dir/meltdown.cc.o"
  "CMakeFiles/kleb_workload.dir/meltdown.cc.o.d"
  "CMakeFiles/kleb_workload.dir/phase_workload.cc.o"
  "CMakeFiles/kleb_workload.dir/phase_workload.cc.o.d"
  "libkleb_workload.a"
  "libkleb_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kleb_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
