file(REMOVE_RECURSE
  "libkleb_workload.a"
)
