# Empty dependencies file for kleb_workload.
# This may be replaced when dependencies are built.
