
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/address_streams.cc" "src/workload/CMakeFiles/kleb_workload.dir/address_streams.cc.o" "gcc" "src/workload/CMakeFiles/kleb_workload.dir/address_streams.cc.o.d"
  "/root/repo/src/workload/docker.cc" "src/workload/CMakeFiles/kleb_workload.dir/docker.cc.o" "gcc" "src/workload/CMakeFiles/kleb_workload.dir/docker.cc.o.d"
  "/root/repo/src/workload/linpack.cc" "src/workload/CMakeFiles/kleb_workload.dir/linpack.cc.o" "gcc" "src/workload/CMakeFiles/kleb_workload.dir/linpack.cc.o.d"
  "/root/repo/src/workload/matmul.cc" "src/workload/CMakeFiles/kleb_workload.dir/matmul.cc.o" "gcc" "src/workload/CMakeFiles/kleb_workload.dir/matmul.cc.o.d"
  "/root/repo/src/workload/meltdown.cc" "src/workload/CMakeFiles/kleb_workload.dir/meltdown.cc.o" "gcc" "src/workload/CMakeFiles/kleb_workload.dir/meltdown.cc.o.d"
  "/root/repo/src/workload/phase_workload.cc" "src/workload/CMakeFiles/kleb_workload.dir/phase_workload.cc.o" "gcc" "src/workload/CMakeFiles/kleb_workload.dir/phase_workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/kleb_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/kleb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kleb_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kleb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
