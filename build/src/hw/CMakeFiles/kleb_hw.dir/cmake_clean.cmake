file(REMOVE_RECURSE
  "CMakeFiles/kleb_hw.dir/cache.cc.o"
  "CMakeFiles/kleb_hw.dir/cache.cc.o.d"
  "CMakeFiles/kleb_hw.dir/cpu_core.cc.o"
  "CMakeFiles/kleb_hw.dir/cpu_core.cc.o.d"
  "CMakeFiles/kleb_hw.dir/machine_config.cc.o"
  "CMakeFiles/kleb_hw.dir/machine_config.cc.o.d"
  "CMakeFiles/kleb_hw.dir/mem_hierarchy.cc.o"
  "CMakeFiles/kleb_hw.dir/mem_hierarchy.cc.o.d"
  "CMakeFiles/kleb_hw.dir/msr.cc.o"
  "CMakeFiles/kleb_hw.dir/msr.cc.o.d"
  "CMakeFiles/kleb_hw.dir/perf_event.cc.o"
  "CMakeFiles/kleb_hw.dir/perf_event.cc.o.d"
  "CMakeFiles/kleb_hw.dir/pmu.cc.o"
  "CMakeFiles/kleb_hw.dir/pmu.cc.o.d"
  "CMakeFiles/kleb_hw.dir/timer_device.cc.o"
  "CMakeFiles/kleb_hw.dir/timer_device.cc.o.d"
  "libkleb_hw.a"
  "libkleb_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kleb_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
