
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/cache.cc" "src/hw/CMakeFiles/kleb_hw.dir/cache.cc.o" "gcc" "src/hw/CMakeFiles/kleb_hw.dir/cache.cc.o.d"
  "/root/repo/src/hw/cpu_core.cc" "src/hw/CMakeFiles/kleb_hw.dir/cpu_core.cc.o" "gcc" "src/hw/CMakeFiles/kleb_hw.dir/cpu_core.cc.o.d"
  "/root/repo/src/hw/machine_config.cc" "src/hw/CMakeFiles/kleb_hw.dir/machine_config.cc.o" "gcc" "src/hw/CMakeFiles/kleb_hw.dir/machine_config.cc.o.d"
  "/root/repo/src/hw/mem_hierarchy.cc" "src/hw/CMakeFiles/kleb_hw.dir/mem_hierarchy.cc.o" "gcc" "src/hw/CMakeFiles/kleb_hw.dir/mem_hierarchy.cc.o.d"
  "/root/repo/src/hw/msr.cc" "src/hw/CMakeFiles/kleb_hw.dir/msr.cc.o" "gcc" "src/hw/CMakeFiles/kleb_hw.dir/msr.cc.o.d"
  "/root/repo/src/hw/perf_event.cc" "src/hw/CMakeFiles/kleb_hw.dir/perf_event.cc.o" "gcc" "src/hw/CMakeFiles/kleb_hw.dir/perf_event.cc.o.d"
  "/root/repo/src/hw/pmu.cc" "src/hw/CMakeFiles/kleb_hw.dir/pmu.cc.o" "gcc" "src/hw/CMakeFiles/kleb_hw.dir/pmu.cc.o.d"
  "/root/repo/src/hw/timer_device.cc" "src/hw/CMakeFiles/kleb_hw.dir/timer_device.cc.o" "gcc" "src/hw/CMakeFiles/kleb_hw.dir/timer_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/kleb_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kleb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
