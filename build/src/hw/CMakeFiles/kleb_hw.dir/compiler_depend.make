# Empty compiler generated dependencies file for kleb_hw.
# This may be replaced when dependencies are built.
