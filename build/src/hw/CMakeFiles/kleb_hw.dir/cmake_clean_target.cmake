file(REMOVE_RECURSE
  "libkleb_hw.a"
)
