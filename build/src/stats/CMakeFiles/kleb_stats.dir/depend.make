# Empty dependencies file for kleb_stats.
# This may be replaced when dependencies are built.
