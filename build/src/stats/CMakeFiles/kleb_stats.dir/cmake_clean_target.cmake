file(REMOVE_RECURSE
  "libkleb_stats.a"
)
