file(REMOVE_RECURSE
  "CMakeFiles/kleb_stats.dir/histogram.cc.o"
  "CMakeFiles/kleb_stats.dir/histogram.cc.o.d"
  "CMakeFiles/kleb_stats.dir/summary.cc.o"
  "CMakeFiles/kleb_stats.dir/summary.cc.o.d"
  "CMakeFiles/kleb_stats.dir/time_series.cc.o"
  "CMakeFiles/kleb_stats.dir/time_series.cc.o.d"
  "libkleb_stats.a"
  "libkleb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kleb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
