file(REMOVE_RECURSE
  "CMakeFiles/kleb_kernel.dir/kernel.cc.o"
  "CMakeFiles/kleb_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/kleb_kernel.dir/process.cc.o"
  "CMakeFiles/kleb_kernel.dir/process.cc.o.d"
  "CMakeFiles/kleb_kernel.dir/system.cc.o"
  "CMakeFiles/kleb_kernel.dir/system.cc.o.d"
  "libkleb_kernel.a"
  "libkleb_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kleb_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
