file(REMOVE_RECURSE
  "libkleb_kernel.a"
)
