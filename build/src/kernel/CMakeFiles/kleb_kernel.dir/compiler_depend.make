# Empty compiler generated dependencies file for kleb_kernel.
# This may be replaced when dependencies are built.
