file(REMOVE_RECURSE
  "CMakeFiles/kleb_tools.dir/harness.cc.o"
  "CMakeFiles/kleb_tools.dir/harness.cc.o.d"
  "CMakeFiles/kleb_tools.dir/instrumented.cc.o"
  "CMakeFiles/kleb_tools.dir/instrumented.cc.o.d"
  "CMakeFiles/kleb_tools.dir/multiplex.cc.o"
  "CMakeFiles/kleb_tools.dir/multiplex.cc.o.d"
  "CMakeFiles/kleb_tools.dir/perf.cc.o"
  "CMakeFiles/kleb_tools.dir/perf.cc.o.d"
  "CMakeFiles/kleb_tools.dir/task_pmu.cc.o"
  "CMakeFiles/kleb_tools.dir/task_pmu.cc.o.d"
  "libkleb_tools.a"
  "libkleb_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kleb_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
