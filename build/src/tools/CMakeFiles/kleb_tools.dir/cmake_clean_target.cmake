file(REMOVE_RECURSE
  "libkleb_tools.a"
)
