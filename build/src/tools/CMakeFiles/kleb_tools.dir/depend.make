# Empty dependencies file for kleb_tools.
# This may be replaced when dependencies are built.
