file(REMOVE_RECURSE
  "CMakeFiles/kleb_core.dir/kleb_controller.cc.o"
  "CMakeFiles/kleb_core.dir/kleb_controller.cc.o.d"
  "CMakeFiles/kleb_core.dir/kleb_module.cc.o"
  "CMakeFiles/kleb_core.dir/kleb_module.cc.o.d"
  "CMakeFiles/kleb_core.dir/sequential.cc.o"
  "CMakeFiles/kleb_core.dir/sequential.cc.o.d"
  "CMakeFiles/kleb_core.dir/session.cc.o"
  "CMakeFiles/kleb_core.dir/session.cc.o.d"
  "libkleb_core.a"
  "libkleb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kleb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
