# Empty compiler generated dependencies file for kleb_core.
# This may be replaced when dependencies are built.
