file(REMOVE_RECURSE
  "libkleb_core.a"
)
