
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kleb/kleb_controller.cc" "src/kleb/CMakeFiles/kleb_core.dir/kleb_controller.cc.o" "gcc" "src/kleb/CMakeFiles/kleb_core.dir/kleb_controller.cc.o.d"
  "/root/repo/src/kleb/kleb_module.cc" "src/kleb/CMakeFiles/kleb_core.dir/kleb_module.cc.o" "gcc" "src/kleb/CMakeFiles/kleb_core.dir/kleb_module.cc.o.d"
  "/root/repo/src/kleb/sequential.cc" "src/kleb/CMakeFiles/kleb_core.dir/sequential.cc.o" "gcc" "src/kleb/CMakeFiles/kleb_core.dir/sequential.cc.o.d"
  "/root/repo/src/kleb/session.cc" "src/kleb/CMakeFiles/kleb_core.dir/session.cc.o" "gcc" "src/kleb/CMakeFiles/kleb_core.dir/session.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/kernel/CMakeFiles/kleb_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/kleb_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/kleb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/kleb_base.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/kleb_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
