# Empty compiler generated dependencies file for docker_characterization.
# This may be replaced when dependencies are built.
