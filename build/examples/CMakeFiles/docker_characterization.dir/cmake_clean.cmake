file(REMOVE_RECURSE
  "CMakeFiles/docker_characterization.dir/docker_characterization.cpp.o"
  "CMakeFiles/docker_characterization.dir/docker_characterization.cpp.o.d"
  "docker_characterization"
  "docker_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docker_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
