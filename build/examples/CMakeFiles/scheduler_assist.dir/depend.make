# Empty dependencies file for scheduler_assist.
# This may be replaced when dependencies are built.
