file(REMOVE_RECURSE
  "CMakeFiles/scheduler_assist.dir/scheduler_assist.cpp.o"
  "CMakeFiles/scheduler_assist.dir/scheduler_assist.cpp.o.d"
  "scheduler_assist"
  "scheduler_assist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduler_assist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
