file(REMOVE_RECURSE
  "CMakeFiles/meltdown_detection.dir/meltdown_detection.cpp.o"
  "CMakeFiles/meltdown_detection.dir/meltdown_detection.cpp.o.d"
  "meltdown_detection"
  "meltdown_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/meltdown_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
