# Empty dependencies file for meltdown_detection.
# This may be replaced when dependencies are built.
