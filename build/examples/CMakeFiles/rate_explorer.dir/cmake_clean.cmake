file(REMOVE_RECURSE
  "CMakeFiles/rate_explorer.dir/rate_explorer.cpp.o"
  "CMakeFiles/rate_explorer.dir/rate_explorer.cpp.o.d"
  "rate_explorer"
  "rate_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
