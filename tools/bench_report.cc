/**
 * @file
 * Substrate perf-report tool: converts google-benchmark JSON output
 * into the repo's compact `BENCH_substrate.json` format and compares
 * a fresh run against the checked-in baseline.
 *
 * Usage:
 *   bench_report --from-gbench <gbench.json> --out <report.json>
 *   bench_report --compare <baseline.json> <current.json>
 *                [--threshold <x>]
 *   bench_report --check-budget <pareto.csv> [--slack <pct>]
 *   bench_report --check-fleet <fleet.csv>
 *   bench_report --self-test
 *
 * Report format (one ns/op number per benchmark):
 *   {
 *     "schema": "kleb-bench-substrate-v1",
 *     "unit": "ns_per_op",
 *     "benchmarks": { "BM_EventQueueSchedule": 22.7, ... }
 *   }
 *
 * --compare exits 1 when a benchmark present in BOTH files got
 * slower than baseline * threshold (default 3.0 — generous, so the
 * CI gate stays quiet on noisy shared runners), when the
 * listener-detach invariant fails: a queue whose listener was
 * attached and detached must perform like one that never had a
 * listener (BM_EventQueueScheduleAfterListenerDetach must stay
 * within 2x of BM_EventQueueSchedule), or when the candidate run
 * contains a benchmark the baseline doesn't.  A NEW benchmark means
 * someone added a counter without regenerating the checked-in
 * baseline — exactly the state in which a later regression in it
 * would pass silently — so it fails the gate until the baseline is
 * refreshed (or the run is explicitly blessed with --allow-new).
 * Benchmarks that exist only in the baseline (retired counters) are
 * reported but never gate.
 *
 * --check-budget gates the adaptive-sampling Pareto CSV emitted by
 * `abl_adaptive_budget --csv`: every adaptive row of the long-form
 * matmul workload must measure overhead_pct <= budget_pct + slack
 * (default 0.75 — the fixed session costs put a floor under
 * reachable overhead, so an aggressive budget legitimately lands a
 * fraction above it with the governor pegged at its period
 * ceiling), and its count accuracy must sit within 2 percentage
 * points of the best fixed-rate row for the same workload.  Short
 * workloads (table III's sub-100 ms dgemm) finish before the
 * governor's estimate converges; their adaptive rows are reported
 * but never gate.  Exit 1 on violation or when no adaptive matmul
 * row exists.
 *
 * --check-fleet gates the fleet smoke CSV emitted by
 * `abl_fleet_scale`: every row's accounting partition must balance
 * (kept + dropped + vanished + quarantined == produced), every
 * scenario must carry one digest pair across all jobs values (with
 * at least two distinct jobs values present), and every crash row
 * must have restarted at least once while still matching its
 * crash-free scenario's digests byte for byte.  Exit 1 on any
 * violation.
 *
 * Both parsers are deliberately minimal: they handle the JSON these
 * two producers emit (string keys, numbers, flat-ish structure), not
 * arbitrary JSON.
 */

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace
{

using BenchMap = std::map<std::string, double>;

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

/** Extract the JSON string starting at text[pos] (a '"'). */
bool
parseString(const std::string &text, std::size_t *pos,
            std::string *out)
{
    if (*pos >= text.size() || text[*pos] != '"')
        return false;
    out->clear();
    for (std::size_t i = *pos + 1; i < text.size(); ++i) {
        char c = text[i];
        if (c == '\\') {
            ++i;
            if (i < text.size())
                out->push_back(text[i]);
        } else if (c == '"') {
            *pos = i + 1;
            return true;
        } else {
            out->push_back(c);
        }
    }
    return false;
}

/** Value of the "key": <num|string> pair nearest after @p from. */
bool
findField(const std::string &text, std::size_t from,
          std::size_t until, const std::string &key,
          std::string *out)
{
    const std::string needle = "\"" + key + "\"";
    std::size_t k = text.find(needle, from);
    if (k == std::string::npos || k >= until)
        return false;
    std::size_t p = text.find(':', k + needle.size());
    if (p == std::string::npos)
        return false;
    ++p;
    while (p < text.size() &&
           std::isspace(static_cast<unsigned char>(text[p])))
        ++p;
    if (p < text.size() && text[p] == '"')
        return parseString(text, &p, out);
    std::size_t e = p;
    while (e < text.size() && text[e] != ',' && text[e] != '}' &&
           text[e] != '\n')
        ++e;
    *out = text.substr(p, e - p);
    return !out->empty();
}

/**
 * Parse google-benchmark --benchmark_format=json output: scan each
 * object in the "benchmarks" array for name/real_time/time_unit.
 */
bool
parseGbench(const std::string &text, BenchMap *out,
            std::string *error)
{
    std::size_t arr = text.find("\"benchmarks\"");
    if (arr == std::string::npos) {
        *error = "no \"benchmarks\" array";
        return false;
    }
    std::size_t pos = text.find('[', arr);
    if (pos == std::string::npos) {
        *error = "malformed \"benchmarks\" array";
        return false;
    }
    while (true) {
        std::size_t obj = text.find('{', pos);
        if (obj == std::string::npos)
            break;
        std::size_t end = text.find('}', obj);
        if (end == std::string::npos)
            break;
        std::string name, rt, unit;
        if (findField(text, obj, end, "name", &name) &&
            findField(text, obj, end, "real_time", &rt)) {
            double ns = std::strtod(rt.c_str(), nullptr);
            if (findField(text, obj, end, "time_unit", &unit)) {
                if (unit == "us")
                    ns *= 1e3;
                else if (unit == "ms")
                    ns *= 1e6;
                else if (unit == "s")
                    ns *= 1e9;
            }
            // Aggregate rows (mean/median/stddev) shadow the raw
            // run under the same base name; keep the first entry.
            if (!out->count(name))
                (*out)[name] = ns;
        }
        pos = end + 1;
    }
    if (out->empty()) {
        *error = "no benchmark entries parsed";
        return false;
    }
    return true;
}

/** Parse the compact report format this tool writes. */
bool
parseReport(const std::string &text, BenchMap *out,
            std::string *error)
{
    std::size_t sec = text.find("\"benchmarks\"");
    if (sec == std::string::npos) {
        *error = "no \"benchmarks\" section";
        return false;
    }
    std::size_t pos = text.find('{', sec);
    if (pos == std::string::npos) {
        *error = "malformed \"benchmarks\" section";
        return false;
    }
    std::size_t end = text.find('}', pos);
    if (end == std::string::npos) {
        *error = "unterminated \"benchmarks\" section";
        return false;
    }
    ++pos;
    while (pos < end) {
        std::size_t q = text.find('"', pos);
        if (q == std::string::npos || q >= end)
            break;
        std::string name;
        std::size_t p = q;
        if (!parseString(text, &p, &name)) {
            *error = "bad benchmark name";
            return false;
        }
        std::size_t colon = text.find(':', p);
        if (colon == std::string::npos || colon >= end) {
            *error = "missing value for " + name;
            return false;
        }
        (*out)[name] =
            std::strtod(text.c_str() + colon + 1, nullptr);
        pos = text.find(',', colon);
        if (pos == std::string::npos || pos >= end)
            break;
        ++pos;
    }
    if (out->empty()) {
        *error = "no benchmark entries parsed";
        return false;
    }
    return true;
}

bool
writeReport(const std::string &path, const BenchMap &benches)
{
    std::ofstream outf(path);
    if (!outf)
        return false;
    outf << "{\n"
         << "  \"schema\": \"kleb-bench-substrate-v1\",\n"
         << "  \"unit\": \"ns_per_op\",\n"
         << "  \"benchmarks\": {\n";
    std::size_t i = 0;
    char buf[64];
    for (const auto &[name, ns] : benches) {
        std::snprintf(buf, sizeof(buf), "%.3f", ns);
        outf << "    \"" << name << "\": " << buf
             << (++i == benches.size() ? "\n" : ",\n");
    }
    outf << "  }\n}\n";
    return static_cast<bool>(outf);
}

/**
 * @return process exit code: 0 clean, 1 regression found.
 */
int
compare(const BenchMap &baseline, const BenchMap &current,
        double threshold, bool allow_new)
{
    int failures = 0;
    for (const auto &[name, base_ns] : baseline) {
        auto it = current.find(name);
        if (it == current.end()) {
            std::printf("  ABSENT   %-44s (baseline %.1f ns)\n",
                        name.c_str(), base_ns);
            continue;
        }
        double ratio =
            base_ns > 0.0 ? it->second / base_ns : 1.0;
        const char *tag = "ok";
        if (ratio > threshold) {
            tag = "REGRESSED";
            ++failures;
        }
        std::printf("  %-9s %-44s %9.1f -> %9.1f ns (%.2fx)\n",
                    tag, name.c_str(), base_ns, it->second, ratio);
    }
    int unbaselined = 0;
    for (const auto &[name, ns] : current) {
        if (baseline.count(name))
            continue;
        std::printf("  NEW      %-44s %9.1f ns%s\n", name.c_str(),
                    ns, allow_new ? " (allowed)" : "");
        if (!allow_new)
            ++unbaselined;
    }
    if (unbaselined > 0) {
        std::printf("bench_report: %d benchmark(s) missing from "
                    "the baseline — regenerate it (or bless the "
                    "run with --allow-new)\n",
                    unbaselined);
        failures += unbaselined;
    }

    // Listener-detach invariant: detaching must restore the
    // no-listener fast path.
    auto sched = current.find("BM_EventQueueSchedule");
    auto detach =
        current.find("BM_EventQueueScheduleAfterListenerDetach");
    if (sched != current.end() && detach != current.end() &&
        sched->second > 0.0) {
        double ratio = detach->second / sched->second;
        if (ratio > 2.0) {
            std::printf("  REGRESSED listener detach leaves "
                        "schedule %.2fx slower (limit 2x)\n",
                        ratio);
            ++failures;
        } else {
            std::printf("  ok        listener detach restores "
                        "baseline (%.2fx)\n",
                        ratio);
        }
    }

    if (failures > 0) {
        std::printf("bench_report: %d regression(s) beyond %.1fx\n",
                    failures, threshold);
        return 1;
    }
    std::printf("bench_report: within %.1fx of baseline\n",
                threshold);
    return 0;
}

/** One parsed row of the adaptive-budget Pareto CSV. */
struct ParetoRow
{
    std::string workload;
    std::string mode;
    std::string config;
    double budgetPct = 0.0;
    double overheadPct = 0.0;
    double accuracyErrPct = 0.0;
};

/** The machine-readable contract abl_adaptive_budget emits. */
constexpr const char *paretoHeader =
    "workload,mode,config,budget_pct,overhead_pct,"
    "accuracy_err_pct,samples,period_changes,final_period_us,"
    "mean_s";

/**
 * Pull the Pareto rows out of @p text (which may contain banner /
 * table noise around the CSV block).  Baseline rows carry "-" in
 * the numeric columns and are skipped.
 */
bool
parseParetoCsv(const std::string &text,
               std::vector<ParetoRow> *out, std::string *error)
{
    std::size_t hdr = text.find(paretoHeader);
    if (hdr == std::string::npos) {
        *error = "no adaptive-budget CSV header";
        return false;
    }
    std::istringstream lines(text.substr(hdr));
    std::string line;
    std::getline(lines, line); // header itself
    while (std::getline(lines, line)) {
        std::vector<std::string> cells;
        std::istringstream cs(line);
        std::string cell;
        while (std::getline(cs, cell, ','))
            cells.push_back(cell);
        if (cells.size() != 10)
            break; // end of the CSV block
        if (cells[3] == "-")
            continue; // baseline row
        ParetoRow row;
        row.workload = cells[0];
        row.mode = cells[1];
        row.config = cells[2];
        row.budgetPct = std::strtod(cells[3].c_str(), nullptr);
        row.overheadPct = std::strtod(cells[4].c_str(), nullptr);
        row.accuracyErrPct =
            std::strtod(cells[5].c_str(), nullptr);
        out->push_back(std::move(row));
    }
    if (out->empty()) {
        *error = "no data rows under the CSV header";
        return false;
    }
    return true;
}

/**
 * @return process exit code: 0 when every gated adaptive row holds
 * its budget and accuracy bound, 1 otherwise.
 */
int
checkBudget(const std::vector<ParetoRow> &rows, double slack)
{
    // Accuracy reference: the best fixed-rate row per workload.
    std::map<std::string, double> best_fixed;
    for (const ParetoRow &r : rows) {
        if (r.mode != "fixed")
            continue;
        auto it = best_fixed.find(r.workload);
        if (it == best_fixed.end() ||
            r.accuracyErrPct < it->second)
            best_fixed[r.workload] = r.accuracyErrPct;
    }

    int failures = 0;
    int gated = 0;
    for (const ParetoRow &r : rows) {
        if (r.mode != "adaptive")
            continue;
        // Only the long-form matmul gates: the governor needs a
        // few drain cycles to converge, which sub-100 ms programs
        // don't grant (that is the table III story, not a bug).
        const bool gates = r.workload == "matmul";
        if (gates)
            ++gated;
        const char *tag = gates ? "ok" : "info";
        bool over = r.overheadPct > r.budgetPct + slack;
        auto fixed_it = best_fixed.find(r.workload);
        bool inaccurate =
            fixed_it != best_fixed.end() &&
            r.accuracyErrPct > fixed_it->second + 2.0;
        if (gates && (over || inaccurate)) {
            tag = over ? "OVERBUDGET" : "INACCURATE";
            ++failures;
        }
        std::printf("  %-10s %-8s %-6s budget %5.2f%%  "
                    "overhead %6.3f%%  accuracy-err %6.4f%%\n",
                    tag, r.workload.c_str(), r.config.c_str(),
                    r.budgetPct, r.overheadPct,
                    r.accuracyErrPct);
    }
    if (gated == 0) {
        std::printf("bench_report: no gated adaptive rows in "
                    "the CSV\n");
        return 1;
    }
    if (failures > 0) {
        std::printf("bench_report: %d adaptive row(s) broke the "
                    "budget (slack %.2f%%) or accuracy bound\n",
                    failures, slack);
        return 1;
    }
    std::printf("bench_report: %d adaptive row(s) within budget "
                "(slack %.2f%%) and accuracy bound\n",
                gated, slack);
    return 0;
}

/** One parsed row of the fleet smoke CSV (abl_fleet_scale). */
struct FleetRow
{
    std::string scenario;
    unsigned jobs = 0;
    std::uint64_t machines = 0;
    std::uint64_t produced = 0;
    std::uint64_t kept = 0;
    std::uint64_t dropped = 0;
    std::uint64_t vanished = 0;
    std::uint64_t quarantined = 0;
    std::uint64_t restarts = 0;
    bool balanced = false;
    std::string matches;
    std::string csvDigest;
    std::string treeDigest;
};

/** The machine-readable contract abl_fleet_scale emits. */
constexpr const char *fleetHeader =
    "scenario,jobs,machines,produced,kept,dropped,vanished,"
    "quarantined,accepted,holes,restarts,balanced,matches,"
    "csv_digest,tree_digest";

/** Pull the fleet smoke rows out of @p text (banner noise ok). */
bool
parseFleetCsv(const std::string &text, std::vector<FleetRow> *out,
              std::string *error)
{
    std::size_t hdr = text.find(fleetHeader);
    if (hdr == std::string::npos) {
        *error = "no fleet smoke CSV header";
        return false;
    }
    std::istringstream lines(text.substr(hdr));
    std::string line;
    std::getline(lines, line); // header itself
    while (std::getline(lines, line)) {
        std::vector<std::string> cells;
        std::istringstream cs(line);
        std::string cell;
        while (std::getline(cs, cell, ','))
            cells.push_back(cell);
        if (cells.size() != 15)
            break; // end of the CSV block
        FleetRow row;
        row.scenario = cells[0];
        row.jobs = static_cast<unsigned>(
            std::strtoul(cells[1].c_str(), nullptr, 10));
        row.machines = std::strtoull(cells[2].c_str(), nullptr, 10);
        row.produced = std::strtoull(cells[3].c_str(), nullptr, 10);
        row.kept = std::strtoull(cells[4].c_str(), nullptr, 10);
        row.dropped = std::strtoull(cells[5].c_str(), nullptr, 10);
        row.vanished = std::strtoull(cells[6].c_str(), nullptr, 10);
        row.quarantined =
            std::strtoull(cells[7].c_str(), nullptr, 10);
        row.restarts = std::strtoull(cells[10].c_str(), nullptr, 10);
        row.balanced = cells[11] == "yes";
        row.matches = cells[12];
        row.csvDigest = cells[13];
        row.treeDigest = cells[14];
        out->push_back(std::move(row));
    }
    if (out->empty()) {
        *error = "no data rows under the fleet CSV header";
        return false;
    }
    return true;
}

/**
 * Gate the fleet smoke CSV: every row must balance its accounting
 * partition, every scenario's digest pair must be identical across
 * jobs values (at least two distinct jobs values must appear), and
 * every crash row must both have restarted and match its crash-free
 * scenario's digests byte for byte.
 * @return process exit code (0 = all gates hold).
 */
int
checkFleet(const std::vector<FleetRow> &rows)
{
    int failures = 0;
    auto fail = [&failures](const std::string &msg) {
        std::printf("  FAIL %s\n", msg.c_str());
        ++failures;
    };

    std::map<std::string, const FleetRow *> first_of;
    std::map<unsigned, int> jobs_seen;
    for (const FleetRow &r : rows) {
        ++jobs_seen[r.jobs];
        const std::string tag =
            r.scenario + " (jobs " + std::to_string(r.jobs) + ")";

        if (!r.balanced)
            fail(tag + ": accounting did not balance");
        if (r.kept + r.dropped + r.vanished + r.quarantined !=
            r.produced)
            fail(tag + ": partition sum != produced");

        // All rows of one scenario share one digest pair.
        auto [it, fresh] = first_of.try_emplace(r.scenario, &r);
        if (!fresh && (it->second->csvDigest != r.csvDigest ||
                       it->second->treeDigest != r.treeDigest))
            fail(tag + ": digests differ across jobs values");
    }

    if (jobs_seen.size() < 2)
        fail("need rows at two or more jobs values to prove "
             "jobs-invariance");

    for (const FleetRow &r : rows) {
        if (r.matches == "-")
            continue;
        auto it = first_of.find(r.matches);
        if (it == first_of.end()) {
            fail(r.scenario + ": matches unknown scenario '" +
                 r.matches + "'");
            continue;
        }
        if (r.csvDigest != it->second->csvDigest ||
            r.treeDigest != it->second->treeDigest)
            fail(r.scenario + ": digests diverge from scenario '" +
                 r.matches + "'");
        if (r.restarts == 0)
            fail(r.scenario + ": crash scenario never restarted");
    }

    std::printf("bench_report: %zu fleet row(s), %d failure(s)\n",
                rows.size(), failures);
    return failures > 0 ? 1 : 0;
}

int
selfTest()
{
    int failed = 0;
    auto check = [&failed](bool ok, const char *what) {
        if (!ok) {
            std::fprintf(stderr, "self-test FAILED: %s\n", what);
            ++failed;
        }
    };

    const std::string gbench = R"({
      "context": {"date": "x", "num_cpus": 8},
      "benchmarks": [
        {"name": "BM_A", "real_time": 12.5, "time_unit": "ns"},
        {"name": "BM_B/16", "real_time": 2.0, "time_unit": "us",
         "items_per_second": 1e6},
        {"name": "BM_A", "real_time": 99.0, "time_unit": "ns"}
      ]
    })";
    BenchMap parsed;
    std::string error;
    check(parseGbench(gbench, &parsed, &error), "gbench parse");
    check(parsed.size() == 2, "gbench entry count");
    check(parsed["BM_A"] == 12.5, "first entry wins");
    check(parsed["BM_B/16"] == 2000.0, "us -> ns conversion");

    const std::string report = R"({
      "schema": "kleb-bench-substrate-v1",
      "unit": "ns_per_op",
      "benchmarks": {
        "BM_A": 12.500,
        "BM_B/16": 2000.000
      }
    })";
    BenchMap rt;
    check(parseReport(report, &rt, &error), "report parse");
    check(rt.size() == 2 && rt["BM_A"] == 12.5 &&
              rt["BM_B/16"] == 2000.0,
          "report round-trip values");

    BenchMap base{{"BM_A", 10.0}, {"BM_GONE", 5.0}};
    BenchMap ok{{"BM_A", 25.0}};
    BenchMap bad{{"BM_A", 31.0}};
    check(compare(base, ok, 3.0, false) == 0, "2.5x passes at 3x");
    check(compare(base, bad, 3.0, false) == 1, "3.1x fails at 3x");

    BenchMap fresh{{"BM_A", 25.0}, {"BM_NEW", 1.0}};
    check(compare(base, fresh, 3.0, false) == 1,
          "unbaselined benchmark fails the gate");
    check(compare(base, fresh, 3.0, true) == 0,
          "--allow-new blesses an unbaselined benchmark");
    check(compare(base, ok, 3.0, false) == 0,
          "retired benchmark (baseline-only) never gates");

    BenchMap detachBad{
        {"BM_EventQueueSchedule", 10.0},
        {"BM_EventQueueScheduleAfterListenerDetach", 25.0},
    };
    check(compare(detachBad, detachBad, 3.0, false) == 1,
          "detach pair beyond 2x fails");
    BenchMap detachOk{
        {"BM_EventQueueSchedule", 10.0},
        {"BM_EventQueueScheduleAfterListenerDetach", 11.0},
    };
    check(compare(detachOk, detachOk, 3.0, false) == 0,
          "detach pair within 2x passes");

    BenchMap empty;
    check(!parseGbench("{}", &empty, &error), "gbench parse error");
    check(!parseReport("{}", &empty, &error), "report parse error");

    const std::string pareto =
        "=== banner noise ===\n" + std::string(paretoHeader) +
        "\n"
        "matmul,baseline,-,-,-,-,0,0,0.0,0.6366\n"
        "matmul,fixed,10ms,0.00,0.623,0.0000,64,0,10000.0,0.64\n"
        "matmul,adaptive,b1.0,1.00,1.160,0.0000,983,4,1600.0,"
        "0.6439\n"
        "mkl,adaptive,b1.0,1.00,6.566,0.0000,325,0,100.0,0.0337\n"
        "trailing non-csv line\n";
    std::vector<ParetoRow> rows;
    check(parseParetoCsv(pareto, &rows, &error), "pareto parse");
    check(rows.size() == 3, "pareto row count (baseline skipped)");
    check(checkBudget(rows, 0.75) == 0, "budget holds at slack");
    check(checkBudget(rows, 0.10) == 1, "budget breaks w/o slack");
    std::vector<ParetoRow> sloppy = rows;
    sloppy[1].accuracyErrPct = 5.0; // the matmul adaptive row
    check(checkBudget(sloppy, 0.75) == 1,
          "accuracy bound vs best fixed row");
    std::vector<ParetoRow> mkl_only{rows[2]};
    check(checkBudget(mkl_only, 0.75) == 1,
          "no gated rows fails");
    std::vector<ParetoRow> none;
    check(!parseParetoCsv("{}", &none, &error),
          "pareto parse error");

    const std::string fleet =
        "=== banner noise ===\nfleet smoke CSV\n" +
        std::string(fleetHeader) +
        "\n"
        "baseline,1,256,5120,5120,0,0,0,5120,0,0,yes,-,"
        "aabbccdd,11223344\n"
        "baseline,4,256,5120,5120,0,0,0,5120,0,0,yes,-,"
        "aabbccdd,11223344\n"
        "chaos,1,256,5120,4000,600,420,100,4000,3,0,yes,-,"
        "deadbeef,55667788\n"
        "chaos,4,256,5120,4000,600,420,100,4000,3,0,yes,-,"
        "deadbeef,55667788\n"
        "collector-crash,4,256,5120,5120,0,0,0,5120,0,1,yes,"
        "baseline,aabbccdd,11223344\n"
        "trailing non-csv line\n";
    std::vector<FleetRow> frows;
    check(parseFleetCsv(fleet, &frows, &error), "fleet parse");
    check(frows.size() == 5, "fleet row count");
    check(checkFleet(frows) == 0, "fleet gates hold");

    std::vector<FleetRow> unbalanced = frows;
    unbalanced[2].balanced = false;
    check(checkFleet(unbalanced) == 1, "unbalanced row fails");

    std::vector<FleetRow> skewed = frows;
    skewed[1].treeDigest = "ffffffff";
    check(checkFleet(skewed) == 1, "jobs digest skew fails");

    std::vector<FleetRow> diverged = frows;
    diverged[4].csvDigest = "ffffffff";
    check(checkFleet(diverged) == 1, "crash divergence fails");

    std::vector<FleetRow> norestart = frows;
    norestart[4].restarts = 0;
    check(checkFleet(norestart) == 1, "crash w/o restart fails");

    std::vector<FleetRow> lopsided = frows;
    lopsided[3].produced = 9999;
    check(checkFleet(lopsided) == 1, "partition sum fails");

    std::vector<FleetRow> onejob{frows[0], frows[2]};
    check(checkFleet(onejob) == 1, "single jobs value fails");

    std::vector<FleetRow> nofleet;
    check(!parseFleetCsv("{}", &nofleet, &error),
          "fleet parse error");

    if (failed == 0)
        std::printf("bench_report: self-test passed\n");
    return failed == 0 ? 0 : 1;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --from-gbench <gbench.json> --out <report.json>\n"
        "       %s --compare <baseline.json> <current.json>"
        " [--threshold <x>] [--allow-new]\n"
        "       %s --check-budget <pareto.csv> [--slack <pct>]\n"
        "       %s --check-fleet <fleet.csv>\n"
        "       %s --self-test\n",
        argv0, argv0, argv0, argv0, argv0);
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string from_gbench, out, base_path, cur_path, budget_path;
    std::string fleet_path;
    double threshold = 3.0;
    double slack = 0.75;
    bool do_compare = false, self_test = false, allow_new = false;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--from-gbench") && i + 1 < argc) {
            from_gbench = argv[++i];
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else if (!std::strcmp(argv[i], "--compare") &&
                   i + 2 < argc) {
            do_compare = true;
            base_path = argv[++i];
            cur_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--check-budget") &&
                   i + 1 < argc) {
            budget_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--check-fleet") &&
                   i + 1 < argc) {
            fleet_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--slack") &&
                   i + 1 < argc) {
            char *end = nullptr;
            slack = std::strtod(argv[++i], &end);
            if (end == nullptr || *end != '\0' || slack < 0.0) {
                std::fprintf(stderr,
                             "bench_report: bad --slack\n");
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--threshold") &&
                   i + 1 < argc) {
            char *end = nullptr;
            threshold = std::strtod(argv[++i], &end);
            if (end == nullptr || *end != '\0' ||
                !(threshold > 0.0)) {
                std::fprintf(stderr,
                             "bench_report: bad --threshold\n");
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--allow-new")) {
            allow_new = true;
        } else if (!std::strcmp(argv[i], "--self-test")) {
            self_test = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (self_test)
        return selfTest();

    if (!from_gbench.empty()) {
        if (out.empty())
            return usage(argv[0]);
        std::string text, error;
        if (!readFile(from_gbench, &text)) {
            std::fprintf(stderr, "bench_report: cannot read %s\n",
                         from_gbench.c_str());
            return 2;
        }
        BenchMap benches;
        if (!parseGbench(text, &benches, &error)) {
            std::fprintf(stderr, "bench_report: %s: %s\n",
                         from_gbench.c_str(), error.c_str());
            return 2;
        }
        if (!writeReport(out, benches)) {
            std::fprintf(stderr, "bench_report: cannot write %s\n",
                         out.c_str());
            return 2;
        }
        std::printf("bench_report: wrote %zu benchmark(s) to %s\n",
                    benches.size(), out.c_str());
        return 0;
    }

    if (!budget_path.empty()) {
        std::string text, error;
        if (!readFile(budget_path, &text)) {
            std::fprintf(stderr, "bench_report: cannot read %s\n",
                         budget_path.c_str());
            return 2;
        }
        std::vector<ParetoRow> rows;
        if (!parseParetoCsv(text, &rows, &error)) {
            std::fprintf(stderr, "bench_report: %s: %s\n",
                         budget_path.c_str(), error.c_str());
            return 2;
        }
        return checkBudget(rows, slack);
    }

    if (!fleet_path.empty()) {
        std::string text, error;
        if (!readFile(fleet_path, &text)) {
            std::fprintf(stderr, "bench_report: cannot read %s\n",
                         fleet_path.c_str());
            return 2;
        }
        std::vector<FleetRow> rows;
        if (!parseFleetCsv(text, &rows, &error)) {
            std::fprintf(stderr, "bench_report: %s: %s\n",
                         fleet_path.c_str(), error.c_str());
            return 2;
        }
        return checkFleet(rows);
    }

    if (do_compare) {
        std::string base_text, cur_text, error;
        if (!readFile(base_path, &base_text)) {
            std::fprintf(stderr, "bench_report: cannot read %s\n",
                         base_path.c_str());
            return 2;
        }
        if (!readFile(cur_path, &cur_text)) {
            std::fprintf(stderr, "bench_report: cannot read %s\n",
                         cur_path.c_str());
            return 2;
        }
        BenchMap baseline, current;
        if (!parseReport(base_text, &baseline, &error)) {
            std::fprintf(stderr, "bench_report: %s: %s\n",
                         base_path.c_str(), error.c_str());
            return 2;
        }
        if (!parseReport(cur_text, &current, &error)) {
            std::fprintf(stderr, "bench_report: %s: %s\n",
                         cur_path.c_str(), error.c_str());
            return 2;
        }
        return compare(baseline, current, threshold, allow_new);
    }

    return usage(argv[0]);
}
