/**
 * @file
 * Substrate perf-report tool: converts google-benchmark JSON output
 * into the repo's compact `BENCH_substrate.json` format and compares
 * a fresh run against the checked-in baseline.
 *
 * Usage:
 *   bench_report --from-gbench <gbench.json> --out <report.json>
 *   bench_report --compare <baseline.json> <current.json>
 *                [--threshold <x>]
 *   bench_report --self-test
 *
 * Report format (one ns/op number per benchmark):
 *   {
 *     "schema": "kleb-bench-substrate-v1",
 *     "unit": "ns_per_op",
 *     "benchmarks": { "BM_EventQueueSchedule": 22.7, ... }
 *   }
 *
 * --compare exits 1 only when a benchmark present in BOTH files got
 * slower than baseline * threshold (default 3.0 — generous, so the
 * CI gate stays quiet on noisy shared runners), or when the
 * listener-detach invariant fails: a queue whose listener was
 * attached and detached must perform like one that never had a
 * listener (BM_EventQueueScheduleAfterListenerDetach must stay
 * within 2x of BM_EventQueueSchedule).  Benchmarks that appear in
 * only one file are reported but never fail the gate, so adding or
 * retiring benchmarks doesn't break CI.
 *
 * Both parsers are deliberately minimal: they handle the JSON these
 * two producers emit (string keys, numbers, flat-ish structure), not
 * arbitrary JSON.
 */

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

namespace
{

using BenchMap = std::map<std::string, double>;

bool
readFile(const std::string &path, std::string *out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
}

/** Extract the JSON string starting at text[pos] (a '"'). */
bool
parseString(const std::string &text, std::size_t *pos,
            std::string *out)
{
    if (*pos >= text.size() || text[*pos] != '"')
        return false;
    out->clear();
    for (std::size_t i = *pos + 1; i < text.size(); ++i) {
        char c = text[i];
        if (c == '\\') {
            ++i;
            if (i < text.size())
                out->push_back(text[i]);
        } else if (c == '"') {
            *pos = i + 1;
            return true;
        } else {
            out->push_back(c);
        }
    }
    return false;
}

/** Value of the "key": <num|string> pair nearest after @p from. */
bool
findField(const std::string &text, std::size_t from,
          std::size_t until, const std::string &key,
          std::string *out)
{
    const std::string needle = "\"" + key + "\"";
    std::size_t k = text.find(needle, from);
    if (k == std::string::npos || k >= until)
        return false;
    std::size_t p = text.find(':', k + needle.size());
    if (p == std::string::npos)
        return false;
    ++p;
    while (p < text.size() &&
           std::isspace(static_cast<unsigned char>(text[p])))
        ++p;
    if (p < text.size() && text[p] == '"')
        return parseString(text, &p, out);
    std::size_t e = p;
    while (e < text.size() && text[e] != ',' && text[e] != '}' &&
           text[e] != '\n')
        ++e;
    *out = text.substr(p, e - p);
    return !out->empty();
}

/**
 * Parse google-benchmark --benchmark_format=json output: scan each
 * object in the "benchmarks" array for name/real_time/time_unit.
 */
bool
parseGbench(const std::string &text, BenchMap *out,
            std::string *error)
{
    std::size_t arr = text.find("\"benchmarks\"");
    if (arr == std::string::npos) {
        *error = "no \"benchmarks\" array";
        return false;
    }
    std::size_t pos = text.find('[', arr);
    if (pos == std::string::npos) {
        *error = "malformed \"benchmarks\" array";
        return false;
    }
    while (true) {
        std::size_t obj = text.find('{', pos);
        if (obj == std::string::npos)
            break;
        std::size_t end = text.find('}', obj);
        if (end == std::string::npos)
            break;
        std::string name, rt, unit;
        if (findField(text, obj, end, "name", &name) &&
            findField(text, obj, end, "real_time", &rt)) {
            double ns = std::strtod(rt.c_str(), nullptr);
            if (findField(text, obj, end, "time_unit", &unit)) {
                if (unit == "us")
                    ns *= 1e3;
                else if (unit == "ms")
                    ns *= 1e6;
                else if (unit == "s")
                    ns *= 1e9;
            }
            // Aggregate rows (mean/median/stddev) shadow the raw
            // run under the same base name; keep the first entry.
            if (!out->count(name))
                (*out)[name] = ns;
        }
        pos = end + 1;
    }
    if (out->empty()) {
        *error = "no benchmark entries parsed";
        return false;
    }
    return true;
}

/** Parse the compact report format this tool writes. */
bool
parseReport(const std::string &text, BenchMap *out,
            std::string *error)
{
    std::size_t sec = text.find("\"benchmarks\"");
    if (sec == std::string::npos) {
        *error = "no \"benchmarks\" section";
        return false;
    }
    std::size_t pos = text.find('{', sec);
    if (pos == std::string::npos) {
        *error = "malformed \"benchmarks\" section";
        return false;
    }
    std::size_t end = text.find('}', pos);
    if (end == std::string::npos) {
        *error = "unterminated \"benchmarks\" section";
        return false;
    }
    ++pos;
    while (pos < end) {
        std::size_t q = text.find('"', pos);
        if (q == std::string::npos || q >= end)
            break;
        std::string name;
        std::size_t p = q;
        if (!parseString(text, &p, &name)) {
            *error = "bad benchmark name";
            return false;
        }
        std::size_t colon = text.find(':', p);
        if (colon == std::string::npos || colon >= end) {
            *error = "missing value for " + name;
            return false;
        }
        (*out)[name] =
            std::strtod(text.c_str() + colon + 1, nullptr);
        pos = text.find(',', colon);
        if (pos == std::string::npos || pos >= end)
            break;
        ++pos;
    }
    if (out->empty()) {
        *error = "no benchmark entries parsed";
        return false;
    }
    return true;
}

bool
writeReport(const std::string &path, const BenchMap &benches)
{
    std::ofstream outf(path);
    if (!outf)
        return false;
    outf << "{\n"
         << "  \"schema\": \"kleb-bench-substrate-v1\",\n"
         << "  \"unit\": \"ns_per_op\",\n"
         << "  \"benchmarks\": {\n";
    std::size_t i = 0;
    char buf[64];
    for (const auto &[name, ns] : benches) {
        std::snprintf(buf, sizeof(buf), "%.3f", ns);
        outf << "    \"" << name << "\": " << buf
             << (++i == benches.size() ? "\n" : ",\n");
    }
    outf << "  }\n}\n";
    return static_cast<bool>(outf);
}

/**
 * @return process exit code: 0 clean, 1 regression found.
 */
int
compare(const BenchMap &baseline, const BenchMap &current,
        double threshold)
{
    int failures = 0;
    for (const auto &[name, base_ns] : baseline) {
        auto it = current.find(name);
        if (it == current.end()) {
            std::printf("  ABSENT   %-44s (baseline %.1f ns)\n",
                        name.c_str(), base_ns);
            continue;
        }
        double ratio =
            base_ns > 0.0 ? it->second / base_ns : 1.0;
        const char *tag = "ok";
        if (ratio > threshold) {
            tag = "REGRESSED";
            ++failures;
        }
        std::printf("  %-9s %-44s %9.1f -> %9.1f ns (%.2fx)\n",
                    tag, name.c_str(), base_ns, it->second, ratio);
    }
    for (const auto &[name, ns] : current) {
        if (!baseline.count(name))
            std::printf("  NEW      %-44s %9.1f ns\n",
                        name.c_str(), ns);
    }

    // Listener-detach invariant: detaching must restore the
    // no-listener fast path.
    auto sched = current.find("BM_EventQueueSchedule");
    auto detach =
        current.find("BM_EventQueueScheduleAfterListenerDetach");
    if (sched != current.end() && detach != current.end() &&
        sched->second > 0.0) {
        double ratio = detach->second / sched->second;
        if (ratio > 2.0) {
            std::printf("  REGRESSED listener detach leaves "
                        "schedule %.2fx slower (limit 2x)\n",
                        ratio);
            ++failures;
        } else {
            std::printf("  ok        listener detach restores "
                        "baseline (%.2fx)\n",
                        ratio);
        }
    }

    if (failures > 0) {
        std::printf("bench_report: %d regression(s) beyond %.1fx\n",
                    failures, threshold);
        return 1;
    }
    std::printf("bench_report: within %.1fx of baseline\n",
                threshold);
    return 0;
}

int
selfTest()
{
    int failed = 0;
    auto check = [&failed](bool ok, const char *what) {
        if (!ok) {
            std::fprintf(stderr, "self-test FAILED: %s\n", what);
            ++failed;
        }
    };

    const std::string gbench = R"({
      "context": {"date": "x", "num_cpus": 8},
      "benchmarks": [
        {"name": "BM_A", "real_time": 12.5, "time_unit": "ns"},
        {"name": "BM_B/16", "real_time": 2.0, "time_unit": "us",
         "items_per_second": 1e6},
        {"name": "BM_A", "real_time": 99.0, "time_unit": "ns"}
      ]
    })";
    BenchMap parsed;
    std::string error;
    check(parseGbench(gbench, &parsed, &error), "gbench parse");
    check(parsed.size() == 2, "gbench entry count");
    check(parsed["BM_A"] == 12.5, "first entry wins");
    check(parsed["BM_B/16"] == 2000.0, "us -> ns conversion");

    const std::string report = R"({
      "schema": "kleb-bench-substrate-v1",
      "unit": "ns_per_op",
      "benchmarks": {
        "BM_A": 12.500,
        "BM_B/16": 2000.000
      }
    })";
    BenchMap rt;
    check(parseReport(report, &rt, &error), "report parse");
    check(rt.size() == 2 && rt["BM_A"] == 12.5 &&
              rt["BM_B/16"] == 2000.0,
          "report round-trip values");

    BenchMap base{{"BM_A", 10.0}, {"BM_GONE", 5.0}};
    BenchMap ok{{"BM_A", 25.0}, {"BM_NEW", 1.0}};
    BenchMap bad{{"BM_A", 31.0}};
    check(compare(base, ok, 3.0) == 0, "2.5x passes at 3x");
    check(compare(base, bad, 3.0) == 1, "3.1x fails at 3x");

    BenchMap detachBad{
        {"BM_EventQueueSchedule", 10.0},
        {"BM_EventQueueScheduleAfterListenerDetach", 25.0},
    };
    check(compare(detachBad, detachBad, 3.0) == 1,
          "detach pair beyond 2x fails");
    BenchMap detachOk{
        {"BM_EventQueueSchedule", 10.0},
        {"BM_EventQueueScheduleAfterListenerDetach", 11.0},
    };
    check(compare(detachOk, detachOk, 3.0) == 0,
          "detach pair within 2x passes");

    BenchMap empty;
    check(!parseGbench("{}", &empty, &error), "gbench parse error");
    check(!parseReport("{}", &empty, &error), "report parse error");

    if (failed == 0)
        std::printf("bench_report: self-test passed\n");
    return failed == 0 ? 0 : 1;
}

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --from-gbench <gbench.json> --out <report.json>\n"
        "       %s --compare <baseline.json> <current.json>"
        " [--threshold <x>]\n"
        "       %s --self-test\n",
        argv0, argv0, argv0);
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string from_gbench, out, base_path, cur_path;
    double threshold = 3.0;
    bool do_compare = false, self_test = false;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--from-gbench") && i + 1 < argc) {
            from_gbench = argv[++i];
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out = argv[++i];
        } else if (!std::strcmp(argv[i], "--compare") &&
                   i + 2 < argc) {
            do_compare = true;
            base_path = argv[++i];
            cur_path = argv[++i];
        } else if (!std::strcmp(argv[i], "--threshold") &&
                   i + 1 < argc) {
            char *end = nullptr;
            threshold = std::strtod(argv[++i], &end);
            if (end == nullptr || *end != '\0' ||
                !(threshold > 0.0)) {
                std::fprintf(stderr,
                             "bench_report: bad --threshold\n");
                return 2;
            }
        } else if (!std::strcmp(argv[i], "--self-test")) {
            self_test = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (self_test)
        return selfTest();

    if (!from_gbench.empty()) {
        if (out.empty())
            return usage(argv[0]);
        std::string text, error;
        if (!readFile(from_gbench, &text)) {
            std::fprintf(stderr, "bench_report: cannot read %s\n",
                         from_gbench.c_str());
            return 2;
        }
        BenchMap benches;
        if (!parseGbench(text, &benches, &error)) {
            std::fprintf(stderr, "bench_report: %s: %s\n",
                         from_gbench.c_str(), error.c_str());
            return 2;
        }
        if (!writeReport(out, benches)) {
            std::fprintf(stderr, "bench_report: cannot write %s\n",
                         out.c_str());
            return 2;
        }
        std::printf("bench_report: wrote %zu benchmark(s) to %s\n",
                    benches.size(), out.c_str());
        return 0;
    }

    if (do_compare) {
        std::string base_text, cur_text, error;
        if (!readFile(base_path, &base_text)) {
            std::fprintf(stderr, "bench_report: cannot read %s\n",
                         base_path.c_str());
            return 2;
        }
        if (!readFile(cur_path, &cur_text)) {
            std::fprintf(stderr, "bench_report: cannot read %s\n",
                         cur_path.c_str());
            return 2;
        }
        BenchMap baseline, current;
        if (!parseReport(base_text, &baseline, &error)) {
            std::fprintf(stderr, "bench_report: %s: %s\n",
                         base_path.c_str(), error.c_str());
            return 2;
        }
        if (!parseReport(cur_text, &current, &error)) {
            std::fprintf(stderr, "bench_report: %s: %s\n",
                         cur_path.c_str(), error.c_str());
            return 2;
        }
        return compare(baseline, current, threshold);
    }

    return usage(argv[0]);
}
