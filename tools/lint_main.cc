/**
 * @file
 * Command-line driver for the source lint pass (src/analysis/lint).
 *
 * Usage: kleb_lint --root <repo-root> [--allowlist <file>]
 *                  [--list-rules]
 *
 * Registered by CMake as the tier-1 `lint.sources` test; exits 1
 * when any banned pattern survives outside the allowlist.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/lint.hh"

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string allowlist;
    bool list_rules = false;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--root") && i + 1 < argc) {
            root = argv[++i];
        } else if (!std::strcmp(argv[i], "--allowlist") &&
                   i + 1 < argc) {
            allowlist = argv[++i];
        } else if (!std::strcmp(argv[i], "--list-rules")) {
            list_rules = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s --root <dir> [--allowlist "
                         "<file>] [--list-rules]\n",
                         argv[0]);
            return 2;
        }
    }

    klebsim::analysis::Linter linter;

    if (list_rules) {
        for (const auto &rule : linter.rules())
            std::printf("%-14s %s\n", rule.id.c_str(),
                        rule.message.c_str());
        return 0;
    }

    if (!allowlist.empty()) {
        std::string error;
        if (!linter.loadAllowlist(allowlist, &error)) {
            std::fprintf(stderr, "kleb_lint: %s\n", error.c_str());
            return 2;
        }
    }

    auto violations = linter.scanTree(root);
    for (const auto &v : violations)
        std::fprintf(stderr, "%s\n", v.str().c_str());

    if (!violations.empty()) {
        std::fprintf(stderr, "kleb_lint: %zu violation(s)\n",
                     violations.size());
        return 1;
    }
    std::printf("kleb_lint: clean\n");
    return 0;
}
