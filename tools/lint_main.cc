/**
 * @file
 * Command-line driver for the source lint pass (src/analysis/lint).
 *
 * Usage: kleb_lint --root <repo-root> [--allowlist <file>]
 *                  [--list-rules]
 *        kleb_lint --fixtures <dir> [--fixtures-update]
 *
 * Registered by CMake as the tier-1 `lint.sources` test; exits 1
 * when any banned pattern survives outside the allowlist.
 *
 * --fixtures runs the linter's self-check: <dir>/tree/ is a corpus
 * of known-good and known-bad snippets (scanned exactly like a repo
 * root, with <dir>/allowlist.txt loaded when present), and the
 * findings must match <dir>/expected.txt line for line.  The corpus
 * pins the scanner's observable behavior, so an engine change that
 * shifts any finding — a missed bad snippet or a new false positive
 * on a good one — fails as a diff instead of slipping through.
 * --fixtures-update rewrites expected.txt from the current scan for
 * intentional changes (hand-review the diff before committing).
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hh"

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s --root <dir> [--allowlist <file>] "
                 "[--list-rules]\n"
                 "       %s --fixtures <dir> [--fixtures-update]\n",
                 argv0, argv0);
    return 2;
}

/** Scan a fixture corpus and return the findings, one str() each. */
bool
scanFixtures(const std::string &dir, std::vector<std::string> *out,
             std::string *error)
{
    namespace fs = std::filesystem;
    const fs::path tree = fs::path(dir) / "tree";
    if (!fs::is_directory(tree)) {
        *error = "fixture dir has no tree/ subdirectory: " + dir;
        return false;
    }

    klebsim::analysis::Linter linter;
    const fs::path allow = fs::path(dir) / "allowlist.txt";
    if (fs::exists(allow)) {
        // Load under the bare name so dangling-entry findings carry
        // a machine-independent origin in expected.txt.
        std::ifstream in(allow, std::ios::in | std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        if (!linter.loadAllowlistFromString(buf.str(),
                                            "allowlist.txt", error))
            return false;
    }

    for (const auto &v : linter.scanTree(tree.string()))
        out->push_back(v.str());
    return true;
}

int
runFixtures(const std::string &dir, bool update)
{
    std::vector<std::string> actual;
    std::string error;
    if (!scanFixtures(dir, &actual, &error)) {
        std::fprintf(stderr, "kleb_lint: %s\n", error.c_str());
        return 2;
    }

    namespace fs = std::filesystem;
    const fs::path expected_path = fs::path(dir) / "expected.txt";

    if (update) {
        std::ofstream out(expected_path);
        for (const std::string &line : actual)
            out << line << '\n';
        if (!out) {
            std::fprintf(stderr, "kleb_lint: cannot write %s\n",
                         expected_path.string().c_str());
            return 2;
        }
        std::printf("kleb_lint: wrote %zu finding(s) to %s\n",
                    actual.size(),
                    expected_path.string().c_str());
        return 0;
    }

    std::vector<std::string> expected;
    {
        std::ifstream in(expected_path);
        if (!in) {
            std::fprintf(stderr, "kleb_lint: cannot read %s\n",
                         expected_path.string().c_str());
            return 2;
        }
        std::string line;
        while (std::getline(in, line))
            expected.push_back(line);
    }

    // Order is deterministic on both sides (files sorted, findings
    // rule-major within a file), so a plain paired walk diffs them.
    std::size_t mismatches = 0;
    const std::size_t n =
        std::max(expected.size(), actual.size());
    for (std::size_t i = 0; i < n; ++i) {
        const std::string *want =
            i < expected.size() ? &expected[i] : nullptr;
        const std::string *got =
            i < actual.size() ? &actual[i] : nullptr;
        if (want && got && *want == *got)
            continue;
        ++mismatches;
        if (want)
            std::fprintf(stderr, "-%s\n", want->c_str());
        if (got)
            std::fprintf(stderr, "+%s\n", got->c_str());
    }

    if (mismatches) {
        std::fprintf(stderr,
                     "kleb_lint: fixture mismatch (%zu line(s); "
                     "expected %zu finding(s), got %zu)\n",
                     mismatches, expected.size(), actual.size());
        return 1;
    }
    std::printf("kleb_lint: fixtures ok (%zu finding(s))\n",
                actual.size());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    std::string allowlist;
    std::string fixtures;
    bool list_rules = false;
    bool fixtures_update = false;

    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--root") && i + 1 < argc) {
            root = argv[++i];
        } else if (!std::strcmp(argv[i], "--allowlist") &&
                   i + 1 < argc) {
            allowlist = argv[++i];
        } else if (!std::strcmp(argv[i], "--fixtures") &&
                   i + 1 < argc) {
            fixtures = argv[++i];
        } else if (!std::strcmp(argv[i], "--fixtures-update")) {
            fixtures_update = true;
        } else if (!std::strcmp(argv[i], "--list-rules")) {
            list_rules = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (fixtures_update && fixtures.empty())
        return usage(argv[0]);
    if (!fixtures.empty())
        return runFixtures(fixtures, fixtures_update);

    klebsim::analysis::Linter linter;

    if (list_rules) {
        for (const auto &rule : linter.rules())
            std::printf("%-14s %s\n", rule.id.c_str(),
                        rule.message.c_str());
        return 0;
    }

    if (!allowlist.empty()) {
        std::string error;
        if (!linter.loadAllowlist(allowlist, &error)) {
            std::fprintf(stderr, "kleb_lint: %s\n", error.c_str());
            return 2;
        }
    }

    auto violations = linter.scanTree(root);
    for (const auto &v : violations)
        std::fprintf(stderr, "%s\n", v.str().c_str());

    if (!violations.empty()) {
        std::fprintf(stderr, "kleb_lint: %zu violation(s)\n",
                     violations.size());
        return 1;
    }
    std::printf("kleb_lint: clean\n");
    return 0;
}
